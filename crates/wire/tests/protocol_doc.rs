//! `docs/PROTOCOL.md` conformance: every byte-layout table in the
//! protocol document is asserted against the `ebs-wire` structs here.
//! If a struct grows or a field moves, this test fails until the
//! document is updated — the doc is normative, so drift is a bug.

use bytes::BytesMut;
use ebs_wire::{
    BlkDesc, BlkReqHdr, BlkReqType, BlkUsedElem, EbsHeader, EbsOp, IntHop, PushdownHdr, PushdownOp,
    PushdownPlacement, BLK_F_DISCARD, BLK_F_FLUSH, BLK_F_MQ, BLK_F_PUSHDOWN, BLK_F_PUSHDOWN_DPU,
    BLK_F_SEG_MAX, BLK_KNOWN_FEATURES, BLK_S_BADCRC, BLK_S_IOERR, BLK_S_OK, BLK_S_UNSUPP,
    DESC_F_DEV_WRITE, PD_FLAG_RESPONSE, PD_FLAG_RETRANSMIT,
};

/// The struct sizes the document's tables claim (§2, §5, §9).
#[test]
fn documented_sizes_match_the_structs() {
    assert_eq!(EbsHeader::LEN, 56, "PROTOCOL.md section 9: EBS header");
    assert_eq!(IntHop::LEN, 28, "PROTOCOL.md section 9: INT record");
    assert_eq!(BlkDesc::LEN, 16, "PROTOCOL.md section 2: ring descriptor");
    assert_eq!(BlkReqHdr::LEN, 16, "PROTOCOL.md section 2: request header");
    assert_eq!(BlkUsedElem::LEN, 8, "PROTOCOL.md section 2: used element");
    assert_eq!(
        PushdownHdr::LEN,
        48,
        "PROTOCOL.md section 5: pushdown frame"
    );
}

/// §3's feature-bit table, bit for bit.
#[test]
fn documented_feature_bits_match() {
    assert_eq!(BLK_F_MQ, 1 << 0);
    assert_eq!(BLK_F_SEG_MAX, 1 << 1);
    assert_eq!(BLK_F_FLUSH, 1 << 2);
    assert_eq!(BLK_F_DISCARD, 1 << 3);
    assert_eq!(BLK_F_PUSHDOWN, 1 << 4);
    assert_eq!(BLK_F_PUSHDOWN_DPU, 1 << 5);
    assert_eq!(BLK_KNOWN_FEATURES, 0x3F, "exactly the six defined bits");
}

/// §4's status codes and §2's descriptor flag.
#[test]
fn documented_statuses_and_flags_match() {
    assert_eq!(BLK_S_OK, 0);
    assert_eq!(BLK_S_IOERR, 1);
    assert_eq!(BLK_S_UNSUPP, 2);
    assert_eq!(BLK_S_BADCRC, 3);
    assert_eq!(DESC_F_DEV_WRITE, 0x0002);
    assert_eq!(PD_FLAG_RESPONSE, 0x01);
    assert_eq!(PD_FLAG_RETRANSMIT, 0x02);
}

/// §2's request-type numbering (virtio-blk values plus the vendor
/// pushdown type) and §5's op/placement discriminants.
#[test]
fn documented_discriminants_match() {
    assert_eq!(BlkReqType::In as u32, 0);
    assert_eq!(BlkReqType::Out as u32, 1);
    assert_eq!(BlkReqType::Flush as u32, 4);
    assert_eq!(BlkReqType::Discard as u32, 11);
    assert_eq!(BlkReqType::Pushdown as u32, 64);
    assert_eq!(PushdownOp::RangeScan as u8, 1);
    assert_eq!(PushdownOp::ChecksumVerify as u8, 2);
    assert_eq!(PushdownOp::CompactionMerge as u8, 3);
    assert_eq!(PushdownPlacement::Client as u8, 0);
    assert_eq!(PushdownPlacement::StorageNode as u8, 1);
    assert_eq!(PushdownPlacement::Dpu as u8, 2);
}

/// §5's pushdown byte offsets: encode a frame with distinguishable
/// field values and read each back at the documented offset (all
/// fields big-endian).
#[test]
fn pushdown_field_offsets_match_the_table() {
    let h = PushdownHdr {
        version: 1,
        op: PushdownOp::CompactionMerge,
        placement: PushdownPlacement::Dpu,
        flags: PD_FLAG_RESPONSE | PD_FLAG_RETRANSMIT,
        req_id: 0x0102_0304_0506_0708,
        vd_id: 0x1112_1314_1516_1718,
        first_block: 0x2122_2324_2526_2728,
        block_count: 0x3132_3334,
        pred_offset: 0x4142,
        pred_mask: 0x51,
        pred_value: 0x61,
        group_k: 8,
        status: BLK_S_BADCRC,
        part: 0x7172,
        blocks_out: 0x8182_8384,
        result_crc: 0x9192_9394,
    };
    let mut buf = BytesMut::new();
    h.encode(&mut buf);
    assert_eq!(buf.len(), 48);
    assert_eq!(buf[0], 1, "version at 0");
    assert_eq!(buf[1], 3, "op at 1");
    assert_eq!(buf[2], 2, "placement at 2");
    assert_eq!(buf[3], 0x03, "flags at 3");
    assert_eq!(&buf[4..12], &0x0102_0304_0506_0708u64.to_be_bytes());
    assert_eq!(&buf[12..20], &0x1112_1314_1516_1718u64.to_be_bytes());
    assert_eq!(&buf[20..28], &0x2122_2324_2526_2728u64.to_be_bytes());
    assert_eq!(&buf[28..32], &0x3132_3334u32.to_be_bytes());
    assert_eq!(&buf[32..34], &0x4142u16.to_be_bytes());
    assert_eq!(buf[34], 0x51, "pred_mask at 34");
    assert_eq!(buf[35], 0x61, "pred_value at 35");
    assert_eq!(buf[36], 8, "group_k at 36");
    assert_eq!(buf[37], BLK_S_BADCRC, "status at 37");
    assert_eq!(&buf[38..40], &0x7172u16.to_be_bytes());
    assert_eq!(&buf[40..44], &0x8182_8384u32.to_be_bytes());
    assert_eq!(&buf[44..48], &0x9192_9394u32.to_be_bytes());
}

/// §2's ring-structure offsets, probed the same way.
#[test]
fn ring_field_offsets_match_the_tables() {
    let d = BlkDesc {
        addr: 0x0102_0304_0506_0708,
        len: 0x1112_1314,
        flags: DESC_F_DEV_WRITE,
        next: 0x3132,
    };
    let mut buf = BytesMut::new();
    d.encode(&mut buf);
    assert_eq!(&buf[0..8], &0x0102_0304_0506_0708u64.to_be_bytes());
    assert_eq!(&buf[8..12], &0x1112_1314u32.to_be_bytes());
    assert_eq!(&buf[12..14], &DESC_F_DEV_WRITE.to_be_bytes());
    assert_eq!(&buf[14..16], &0x3132u16.to_be_bytes());

    let h = BlkReqHdr {
        ty: BlkReqType::Pushdown,
        reserved: 0,
        block: 0x2122_2324_2526_2728,
    };
    let mut buf = BytesMut::new();
    h.encode(&mut buf);
    assert_eq!(&buf[0..4], &64u32.to_be_bytes());
    assert_eq!(&buf[4..8], &[0, 0, 0, 0]);
    assert_eq!(&buf[8..16], &0x2122_2324_2526_2728u64.to_be_bytes());

    let u = BlkUsedElem {
        id: 0x4142,
        status: BLK_S_UNSUPP,
        reserved: 0,
        len: 0x5152_5354,
    };
    let mut buf = BytesMut::new();
    u.encode(&mut buf);
    assert_eq!(&buf[0..2], &0x4142u16.to_be_bytes());
    assert_eq!(buf[2], BLK_S_UNSUPP);
    assert_eq!(buf[3], 0);
    assert_eq!(&buf[4..8], &0x5152_5354u32.to_be_bytes());
}

/// §9's EBS-header offsets for the fields other layers depend on
/// (version/op at the front, segment_id at 48 — the §16 aggregation
/// granule key).
#[test]
fn ebs_header_offsets_match_the_table() {
    let h = EbsHeader {
        version: EbsHeader::VERSION,
        op: EbsOp::ReadReq,
        flags: 0,
        path_id: 2,
        vd_id: 0x0102_0304_0506_0708,
        rpc_id: 0x1112_1314_1516_1718,
        pkt_id: 0x2122,
        total_pkts: 0x3132,
        len: 0x4142_4344,
        block_addr: 0x5152_5354_5556_5758,
        payload_crc: 0x6162_6364,
        path_seq: 0x7172_7374,
        segment_id: 0x8182_8384_8586_8788,
    };
    let mut buf = BytesMut::new();
    h.encode(&mut buf);
    assert_eq!(buf.len(), 56);
    assert_eq!(buf[0], EbsHeader::VERSION, "version at 0");
    assert_eq!(buf[1], EbsOp::ReadReq as u8, "op at 1");
    assert_eq!(buf[3], 2, "path_id at 3");
    assert_eq!(&buf[8..16], &0x0102_0304_0506_0708u64.to_be_bytes());
    assert_eq!(&buf[16..24], &0x1112_1314_1516_1718u64.to_be_bytes());
    assert_eq!(&buf[24..26], &0x2122u16.to_be_bytes());
    assert_eq!(&buf[26..28], &0x3132u16.to_be_bytes());
    assert_eq!(&buf[28..32], &0x4142_4344u32.to_be_bytes());
    assert_eq!(&buf[32..40], &0x5152_5354_5556_5758u64.to_be_bytes());
    assert_eq!(&buf[40..44], &0x6162_6364u32.to_be_bytes());
    assert_eq!(&buf[44..48], &0x7172_7374u32.to_be_bytes());
    assert_eq!(&buf[48..56], &0x8182_8384_8586_8788u64.to_be_bytes());
}
