//! A generational slab: stable `u32`-indexed storage with ABA-safe handles.
//!
//! The fabric's hot path moves packets from queue to queue on every hop.
//! Moving the packet *struct* (flow label + INT stack + payload) through
//! the event queue's storage costs a wide memcpy per schedule/pop; parking
//! it in a slab and moving a [`Handle`] (one `u64`) instead makes every
//! hop's event constant-size and small — the same idiom the event queue
//! itself uses for its payloads (PR 1) and the block pool uses for
//! buffers (PR 2).
//!
//! Safety of recycling is by *generation*: freeing a slot bumps its
//! generation, so a stale handle (slot since reused) can never alias the
//! new occupant — `get`/`take` return `None` instead. The slab is
//! entirely safe code (`#![forbid(unsafe_code)]` stands); the guarantee is
//! checked by proptests and exercised under Miri in CI.

/// Identifies one live value in a [`Slab`]. Packs `generation << 32 |
/// slot`; copyable, hashable, and meaningless across slabs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle(u64);

impl Handle {
    fn new(slot: u32, generation: u32) -> Self {
        Handle(((generation as u64) << 32) | slot as u64)
    }

    /// Slot index (diagnostics; slots are reused across generations).
    pub fn slot(self) -> u32 {
        self.0 as u32
    }

    /// Slot generation this handle was issued under.
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

#[derive(Debug)]
struct Entry<T> {
    generation: u32,
    val: Option<T>,
}

/// A generational slab (see module docs).
#[derive(Debug)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty slab with room for `n` values before reallocating.
    pub fn with_capacity(n: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(n),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no values are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slots ever allocated — bounded by the peak number of simultaneously
    /// live values, not by throughput.
    pub fn slots(&self) -> usize {
        self.entries.len()
    }

    /// Store `val`, returning its handle.
    pub fn insert(&mut self, val: T) -> Handle {
        self.len += 1;
        if let Some(slot) = self.free.pop() {
            let e = &mut self.entries[slot as usize];
            debug_assert!(e.val.is_none());
            e.val = Some(val);
            Handle::new(slot, e.generation)
        } else {
            // lint: allow(panic_discipline) — 2^32 simultaneously live values exceeds any simulated working set by orders of magnitude; there is no sane degraded mode
            let slot = u32::try_from(self.entries.len()).expect("slab overflow");
            self.entries.push(Entry {
                generation: 0,
                val: Some(val),
            });
            Handle::new(slot, 0)
        }
    }

    /// Borrow the value behind `h`, or `None` if it was taken (stale
    /// handle — including a handle whose slot has since been reused).
    pub fn get(&self, h: Handle) -> Option<&T> {
        let e = self.entries.get(h.slot() as usize)?;
        if e.generation != h.generation() {
            return None;
        }
        e.val.as_ref()
    }

    /// Mutably borrow the value behind `h` (same staleness rules as
    /// [`Slab::get`]).
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut T> {
        let e = self.entries.get_mut(h.slot() as usize)?;
        if e.generation != h.generation() {
            return None;
        }
        e.val.as_mut()
    }

    /// Remove and return the value behind `h`, freeing its slot for reuse
    /// under a bumped generation. Stale handles return `None` and change
    /// nothing.
    pub fn take(&mut self, h: Handle) -> Option<T> {
        let e = self.entries.get_mut(h.slot() as usize)?;
        if e.generation != h.generation() {
            return None;
        }
        let val = e.val.take()?;
        e.generation = e.generation.wrapping_add(1);
        self.free.push(h.slot());
        self.len -= 1;
        Some(val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_take_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.take(a), Some("a"));
        assert_eq!(s.get(a), None, "taken handle is stale");
        assert_eq!(s.take(a), None, "double take is a no-op");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn recycled_slot_does_not_alias() {
        let mut s = Slab::new();
        let a = s.insert(1u32);
        s.take(a);
        let b = s.insert(2u32);
        assert_eq!(b.slot(), a.slot(), "slot is reused");
        assert_ne!(b.generation(), a.generation(), "generation bumped");
        assert_eq!(s.get(a), None, "stale handle sees nothing");
        assert_eq!(s.get(b), Some(&2));
        assert_eq!(s.take(a), None);
        assert_eq!(s.get(b), Some(&2), "stale take cannot evict the new value");
    }

    #[test]
    fn slots_bounded_by_peak_not_throughput() {
        let mut s = Slab::new();
        for i in 0..10_000u32 {
            let h = s.insert(i);
            s.take(h);
        }
        assert_eq!(s.slots(), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn get_mut_mutates_live_only() {
        let mut s = Slab::new();
        let a = s.insert(vec![1]);
        s.get_mut(a).unwrap().push(2);
        assert_eq!(s.get(a), Some(&vec![1, 2]));
        s.take(a);
        assert!(s.get_mut(a).is_none());
    }
}
