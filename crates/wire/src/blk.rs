//! Block-frontend wire formats: the virtio-blk-shaped ring structures and
//! the storage-function pushdown frame.
//!
//! The guest-facing edge of the stack is a multi-queue block device in
//! the virtio-blk mold (FlexBSO's vhost-user target has the same shape):
//! a descriptor table of fixed 16-byte descriptors, a driver-owned
//! *available* ring of descriptor indices and a device-owned *used* ring
//! of completion records, all indexed by free-running 16-bit counters
//! masked by the (power-of-two) queue capacity. [`BlkDesc`], [`BlkReqHdr`]
//! and [`BlkUsedElem`] are those structures' byte layouts; `ebs-blk`
//! implements the ring state machine on top of them.
//!
//! [`PushdownHdr`] is the frame a pushed-down storage function travels
//! in: one self-contained request (or response) naming the function, its
//! block range, the predicate, and — on the response — the result size
//! and the aggregate CRC of the transformed data. Like the EBS header,
//! it is fixed-size and self-describing so a DPU pipeline stage can
//! parse it without reassembly state.

use bytes::{Buf, BufMut};

use crate::ip::WireError;

// --- feature bits ----------------------------------------------------------

/// Feature bit: the device supports more than one request queue.
pub const BLK_F_MQ: u64 = 1 << 0;
/// Feature bit: the device enforces a maximum segment count per request
/// (negotiated via [`BlkDesc::len`] limits; mirrors VIRTIO_BLK_F_SEG_MAX).
pub const BLK_F_SEG_MAX: u64 = 1 << 1;
/// Feature bit: FLUSH requests are supported.
pub const BLK_F_FLUSH: u64 = 1 << 2;
/// Feature bit: DISCARD requests are supported.
pub const BLK_F_DISCARD: u64 = 1 << 3;
/// Feature bit: storage-function pushdown (range scan / checksum-verify /
/// compaction merge) may be requested with [`PushdownHdr`] frames.
pub const BLK_F_PUSHDOWN: u64 = 1 << 4;
/// Feature bit: pushdown may additionally be placed on the storage-side
/// DPU's match-action pipeline (requires [`BLK_F_PUSHDOWN`]).
pub const BLK_F_PUSHDOWN_DPU: u64 = 1 << 5;

/// Every feature bit this protocol version defines. Negotiation MUST
/// reject a driver that acknowledges any bit outside this mask.
pub const BLK_KNOWN_FEATURES: u64 =
    BLK_F_MQ | BLK_F_SEG_MAX | BLK_F_FLUSH | BLK_F_DISCARD | BLK_F_PUSHDOWN | BLK_F_PUSHDOWN_DPU;

// --- descriptor ------------------------------------------------------------

/// Descriptor flag: the device writes this buffer (read data / result).
pub const DESC_F_DEV_WRITE: u16 = 0x0002;

/// One ring descriptor (fixed 16 bytes, virtio split-ring layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlkDesc {
    /// Block address the buffer maps (4 KiB-block units on the virtual
    /// disk; the simulator carries addresses, not guest physical memory).
    pub addr: u64,
    /// Buffer length in bytes.
    pub len: u32,
    /// Flag bits ([`DESC_F_DEV_WRITE`]).
    pub flags: u16,
    /// Next free descriptor when chained on the free list (ring-internal).
    pub next: u16,
}

impl BlkDesc {
    /// Encoded size.
    pub const LEN: usize = 16;

    /// Encode into `buf` (big-endian, like every EBS header field).
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u64(self.addr);
        buf.put_u32(self.len);
        buf.put_u16(self.flags);
        buf.put_u16(self.next);
    }

    /// Decode from `buf`.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        if buf.remaining() < Self::LEN {
            return Err(WireError::Truncated);
        }
        Ok(BlkDesc {
            addr: buf.get_u64(),
            len: buf.get_u32(),
            flags: buf.get_u16(),
            next: buf.get_u16(),
        })
    }
}

// --- request header --------------------------------------------------------

/// Request type carried in a [`BlkReqHdr`] (virtio-blk numbering, plus a
/// vendor range for pushdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum BlkReqType {
    /// Device-to-driver data transfer (guest read).
    In = 0,
    /// Driver-to-device data transfer (guest write).
    Out = 1,
    /// Write-back cache flush.
    Flush = 4,
    /// Discard a block range.
    Discard = 11,
    /// Storage-function pushdown; the request's data descriptor carries a
    /// [`PushdownHdr`].
    Pushdown = 64,
}

impl BlkReqType {
    fn from_u32(v: u32) -> Result<Self, WireError> {
        Ok(match v {
            0 => BlkReqType::In,
            1 => BlkReqType::Out,
            4 => BlkReqType::Flush,
            11 => BlkReqType::Discard,
            64 => BlkReqType::Pushdown,
            _ => return Err(WireError::Malformed),
        })
    }
}

/// The fixed 16-byte request header at the head of every ring request
/// (virtio-blk's `struct virtio_blk_req` prefix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlkReqHdr {
    /// Request type.
    pub ty: BlkReqType,
    /// Reserved (virtio's `ioprio`); must be zero.
    pub reserved: u32,
    /// First block address (4 KiB-block units; virtio's `sector` rescaled
    /// to the EBS block size so one descriptor is one block).
    pub block: u64,
}

impl BlkReqHdr {
    /// Encoded size.
    pub const LEN: usize = 16;

    /// Encode into `buf`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32(self.ty as u32);
        buf.put_u32(self.reserved);
        buf.put_u64(self.block);
    }

    /// Decode from `buf`.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        if buf.remaining() < Self::LEN {
            return Err(WireError::Truncated);
        }
        let ty = BlkReqType::from_u32(buf.get_u32())?;
        let reserved = buf.get_u32();
        if reserved != 0 {
            return Err(WireError::Malformed);
        }
        Ok(BlkReqHdr {
            ty,
            reserved,
            block: buf.get_u64(),
        })
    }
}

// --- used element ----------------------------------------------------------

/// Completion status: success.
pub const BLK_S_OK: u8 = 0;
/// Completion status: device-side I/O error.
pub const BLK_S_IOERR: u8 = 1;
/// Completion status: request type unsupported (feature not negotiated).
pub const BLK_S_UNSUPP: u8 = 2;
/// Completion status: the transformed result failed its CRC verification.
pub const BLK_S_BADCRC: u8 = 3;

/// One used-ring element (fixed 8 bytes): which descriptor completed,
/// with how many device-written bytes and what status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlkUsedElem {
    /// Head descriptor index of the completed request.
    pub id: u16,
    /// Completion status ([`BLK_S_OK`], ...).
    pub status: u8,
    /// Reserved pad; must be zero.
    pub reserved: u8,
    /// Bytes the device wrote into the request's buffers.
    pub len: u32,
}

impl BlkUsedElem {
    /// Encoded size.
    pub const LEN: usize = 8;

    /// Encode into `buf`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u16(self.id);
        buf.put_u8(self.status);
        buf.put_u8(self.reserved);
        buf.put_u32(self.len);
    }

    /// Decode from `buf`.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        if buf.remaining() < Self::LEN {
            return Err(WireError::Truncated);
        }
        let id = buf.get_u16();
        let status = buf.get_u8();
        let reserved = buf.get_u8();
        if reserved != 0 {
            return Err(WireError::Malformed);
        }
        Ok(BlkUsedElem {
            id,
            status,
            reserved,
            len: buf.get_u32(),
        })
    }
}

// --- pushdown frame --------------------------------------------------------

/// Pushdown function selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PushdownOp {
    /// Return only the blocks matching the predicate.
    RangeScan = 1,
    /// Return no data; only the aggregate CRC of the range.
    ChecksumVerify = 2,
    /// XOR-fold each group of `group_k` blocks into one output block.
    CompactionMerge = 3,
}

impl PushdownOp {
    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            1 => PushdownOp::RangeScan,
            2 => PushdownOp::ChecksumVerify,
            3 => PushdownOp::CompactionMerge,
            _ => return Err(WireError::Malformed),
        })
    }
}

/// Where a pushdown executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PushdownPlacement {
    /// Baseline: the client reads the whole range and filters locally.
    Client = 0,
    /// The storage node's host CPU runs the function next to the SSD.
    StorageNode = 1,
    /// A metered stage in the storage-side DPU's match-action pipeline.
    Dpu = 2,
}

impl PushdownPlacement {
    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => PushdownPlacement::Client,
            1 => PushdownPlacement::StorageNode,
            2 => PushdownPlacement::Dpu,
            _ => return Err(WireError::Malformed),
        })
    }

    /// Stable lowercase label (metrics keys, journal span names).
    pub fn label(self) -> &'static str {
        match self {
            PushdownPlacement::Client => "client",
            PushdownPlacement::StorageNode => "storage",
            PushdownPlacement::Dpu => "dpu",
        }
    }
}

/// Pushdown header flag: this frame is a response.
pub const PD_FLAG_RESPONSE: u8 = 0x01;
/// Pushdown header flag: this frame is a retransmission.
pub const PD_FLAG_RETRANSMIT: u8 = 0x02;

/// The storage-function pushdown frame (fixed 48 bytes on the wire).
///
/// A request carries the function, predicate and block range; the
/// response reuses the same header with [`PD_FLAG_RESPONSE`] set,
/// `blocks_out` filled in, and `result_crc` holding the aggregate raw
/// CRC32 of the transformed result (see `docs/PROTOCOL.md` §7 for the
/// CRC-of-transformed-data rule). Responses to a RangeScan are followed
/// by `blocks_out` 4 KiB data blocks; ChecksumVerify and the merge ops
/// size their payloads the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushdownHdr {
    /// Protocol version (currently 1).
    pub version: u8,
    /// Function selector.
    pub op: PushdownOp,
    /// Execution placement.
    pub placement: PushdownPlacement,
    /// Flag bits ([`PD_FLAG_RESPONSE`], [`PD_FLAG_RETRANSMIT`]).
    pub flags: u8,
    /// Request id, unique per (compute server, in-flight pushdown).
    pub req_id: u64,
    /// Virtual disk id.
    pub vd_id: u64,
    /// First block of the scanned range (4 KiB-block units).
    pub first_block: u64,
    /// Blocks in the scanned range.
    pub block_count: u32,
    /// Predicate: byte offset within the block to test.
    pub pred_offset: u16,
    /// Predicate: mask applied to the tested byte.
    pub pred_mask: u8,
    /// Predicate: value compared against the masked byte.
    pub pred_value: u8,
    /// CompactionMerge group size (blocks folded per output block; 0 for
    /// the other ops).
    pub group_k: u8,
    /// Response status ([`BLK_S_OK`], ...; 0 on requests).
    pub status: u8,
    /// Part index when the range split across storage servers.
    pub part: u16,
    /// Blocks in the response payload (0 on requests).
    pub blocks_out: u32,
    /// Aggregate raw CRC32 of the transformed result (0 on requests).
    pub result_crc: u32,
}

impl PushdownHdr {
    /// Encoded size.
    pub const LEN: usize = 48;
    /// Current protocol version.
    pub const VERSION: u8 = 1;

    /// Encode into `buf`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(self.version);
        buf.put_u8(self.op as u8);
        buf.put_u8(self.placement as u8);
        buf.put_u8(self.flags);
        buf.put_u64(self.req_id);
        buf.put_u64(self.vd_id);
        buf.put_u64(self.first_block);
        buf.put_u32(self.block_count);
        buf.put_u16(self.pred_offset);
        buf.put_u8(self.pred_mask);
        buf.put_u8(self.pred_value);
        buf.put_u8(self.group_k);
        buf.put_u8(self.status);
        buf.put_u16(self.part);
        buf.put_u32(self.blocks_out);
        buf.put_u32(self.result_crc);
    }

    /// Decode from `buf`.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        if buf.remaining() < Self::LEN {
            return Err(WireError::Truncated);
        }
        let version = buf.get_u8();
        if version != Self::VERSION {
            return Err(WireError::Malformed);
        }
        let op = PushdownOp::from_u8(buf.get_u8())?;
        let placement = PushdownPlacement::from_u8(buf.get_u8())?;
        let flags = buf.get_u8();
        Ok(PushdownHdr {
            version,
            op,
            placement,
            flags,
            req_id: buf.get_u64(),
            vd_id: buf.get_u64(),
            first_block: buf.get_u64(),
            block_count: buf.get_u32(),
            pred_offset: buf.get_u16(),
            pred_mask: buf.get_u8(),
            pred_value: buf.get_u8(),
            group_k: buf.get_u8(),
            status: buf.get_u8(),
            part: buf.get_u16(),
            blocks_out: buf.get_u32(),
            result_crc: buf.get_u32(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn desc_roundtrip() {
        let d = BlkDesc {
            addr: 0xAB_CDEF,
            len: 4096,
            flags: DESC_F_DEV_WRITE,
            next: 7,
        };
        let mut buf = BytesMut::new();
        d.encode(&mut buf);
        assert_eq!(buf.len(), BlkDesc::LEN);
        assert_eq!(BlkDesc::decode(&mut buf.freeze()).unwrap(), d);
    }

    #[test]
    fn req_hdr_roundtrip_all_types() {
        for ty in [
            BlkReqType::In,
            BlkReqType::Out,
            BlkReqType::Flush,
            BlkReqType::Discard,
            BlkReqType::Pushdown,
        ] {
            let h = BlkReqHdr {
                ty,
                reserved: 0,
                block: 123_456,
            };
            let mut buf = BytesMut::new();
            h.encode(&mut buf);
            assert_eq!(buf.len(), BlkReqHdr::LEN);
            assert_eq!(BlkReqHdr::decode(&mut buf.freeze()).unwrap(), h);
        }
    }

    #[test]
    fn req_hdr_rejects_unknown_type_and_nonzero_reserved() {
        let h = BlkReqHdr {
            ty: BlkReqType::In,
            reserved: 0,
            block: 9,
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        buf[3] = 99; // type = 99
        assert_eq!(
            BlkReqHdr::decode(&mut buf.clone().freeze()),
            Err(WireError::Malformed)
        );
        let mut buf2 = BytesMut::new();
        h.encode(&mut buf2);
        buf2[7] = 1; // reserved != 0
        assert_eq!(
            BlkReqHdr::decode(&mut buf2.freeze()),
            Err(WireError::Malformed)
        );
    }

    #[test]
    fn used_elem_roundtrip() {
        let u = BlkUsedElem {
            id: 42,
            status: BLK_S_OK,
            reserved: 0,
            len: 16384,
        };
        let mut buf = BytesMut::new();
        u.encode(&mut buf);
        assert_eq!(buf.len(), BlkUsedElem::LEN);
        assert_eq!(BlkUsedElem::decode(&mut buf.freeze()).unwrap(), u);
    }

    fn sample_pd() -> PushdownHdr {
        PushdownHdr {
            version: 1,
            op: PushdownOp::RangeScan,
            placement: PushdownPlacement::StorageNode,
            flags: 0,
            req_id: 0xFEED_F00D,
            vd_id: 3,
            first_block: 1024,
            block_count: 256,
            pred_offset: 17,
            pred_mask: 0x07,
            pred_value: 0x05,
            group_k: 0,
            status: 0,
            part: 2,
            blocks_out: 0,
            result_crc: 0,
        }
    }

    #[test]
    fn pushdown_roundtrip() {
        let h = sample_pd();
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), PushdownHdr::LEN);
        assert_eq!(PushdownHdr::decode(&mut buf.freeze()).unwrap(), h);
    }

    #[test]
    fn pushdown_response_roundtrip() {
        let mut h = sample_pd();
        h.op = PushdownOp::CompactionMerge;
        h.placement = PushdownPlacement::Dpu;
        h.flags = PD_FLAG_RESPONSE;
        h.group_k = 4;
        h.blocks_out = 64;
        h.result_crc = 0xDEAD_BEEF;
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(PushdownHdr::decode(&mut buf.freeze()).unwrap(), h);
    }

    #[test]
    fn pushdown_rejects_bad_version_op_placement() {
        let h = sample_pd();
        for (byte, bad) in [(0usize, 9u8), (1, 0), (2, 7)] {
            let mut buf = BytesMut::new();
            h.encode(&mut buf);
            buf[byte] = bad;
            assert_eq!(
                PushdownHdr::decode(&mut buf.freeze()),
                Err(WireError::Malformed),
                "byte {byte} = {bad} must be rejected"
            );
        }
    }

    #[test]
    fn pushdown_rejects_truncation() {
        let mut buf = BytesMut::new();
        sample_pd().encode(&mut buf);
        let short = buf.freeze().slice(..PushdownHdr::LEN - 1);
        assert_eq!(
            PushdownHdr::decode(&mut &short[..]),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn known_features_is_exactly_the_defined_bits() {
        assert_eq!(
            BLK_KNOWN_FEATURES,
            BLK_F_MQ
                | BLK_F_SEG_MAX
                | BLK_F_FLUSH
                | BLK_F_DISCARD
                | BLK_F_PUSHDOWN
                | BLK_F_PUSHDOWN_DPU
        );
        // Six contiguous low bits — negotiation masks against this.
        assert_eq!(BLK_KNOWN_FEATURES, 0x3F);
    }

    #[test]
    fn pushdown_request_fits_well_under_one_jumbo_frame() {
        // A pushdown request is one small self-contained frame — the whole
        // point of the placement comparison is that *requests* are cheap
        // and only results move.
        let frame = PushdownHdr::LEN + crate::SOLAR_OVERHEAD;
        assert!(frame < 1500, "pushdown request frame is {frame} bytes");
    }
}
