//! # ebs-wire — wire formats of the Luna/Solar storage network
//!
//! Byte-level codecs shared by the simulator and the real-socket examples:
//!
//! * [`Ipv4Header`] / [`UdpHeader`] / [`TcpHeader`] — minimal but honest
//!   L3/L4 headers (network byte order, internet checksum on IPv4);
//! * [`EbsHeader`] — SOLAR's per-packet storage header: one packet carries
//!   one self-contained 4 KiB block with its address and CRC (§4.4's
//!   "one-block-one-packet" fusion of packet and block);
//! * [`IntStack`] — in-band network telemetry records consumed by the
//!   HPCC-style congestion control;
//! * [`RpcFrame`] / [`FrameDecoder`] — LUNA's length-prefixed RPC framing
//!   over a TCP byte stream, including the incremental reassembly that
//!   SOLAR's design makes unnecessary;
//! * [`BlkDesc`] / [`BlkReqHdr`] / [`BlkUsedElem`] / [`PushdownHdr`] — the
//!   virtio-blk-shaped guest frontend's ring structures and the
//!   storage-function pushdown frame (see `docs/PROTOCOL.md`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod blk;
mod ebs;
mod int;
mod ip;
pub mod pool;
mod rpc;
pub mod slab;

pub use blk::{
    BlkDesc, BlkReqHdr, BlkReqType, BlkUsedElem, PushdownHdr, PushdownOp, PushdownPlacement,
    BLK_F_DISCARD, BLK_F_FLUSH, BLK_F_MQ, BLK_F_PUSHDOWN, BLK_F_PUSHDOWN_DPU, BLK_F_SEG_MAX,
    BLK_KNOWN_FEATURES, BLK_S_BADCRC, BLK_S_IOERR, BLK_S_OK, BLK_S_UNSUPP, DESC_F_DEV_WRITE,
    PD_FLAG_RESPONSE, PD_FLAG_RETRANSMIT,
};
pub use ebs::{EbsHeader, EbsOp, FLAG_ECN_ECHO, FLAG_ENCRYPTED, FLAG_INT_REQUEST, FLAG_RETRANSMIT};
pub use int::{IntHop, IntStack, MAX_INT_HOPS};
pub use ip::{internet_checksum, Ipv4Header, TcpFlags, TcpHeader, UdpHeader, WireError};
pub use pool::{BlockPool, PoolStats, PooledBuf, PooledBytes};
pub use rpc::{FrameDecoder, RpcFrame, RpcMethod};
pub use slab::{Handle, Slab};

/// The EBS data block size: 4 KiB, matching the SSD sector size (§2.2).
pub const BLOCK_SIZE: usize = 4096;

/// Jumbo frame MTU used by SOLAR so one block (+ headers) fits in a single
/// packet. The paper picks 4 KiB blocks in ≤ 9 KiB jumbo frames and
/// deliberately avoids 8 KiB blocks to balance congestion risk (§4.8).
pub const JUMBO_MTU: usize = 9000;

/// Ethernet + IPv4 + UDP + EBS header overhead for one SOLAR data packet.
pub const SOLAR_OVERHEAD: usize = 14 + ip_udp_overhead() + ebs::EbsHeader::LEN;

const fn ip_udp_overhead() -> usize {
    ip::Ipv4Header::LEN + ip::UdpHeader::LEN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_block_fits_one_jumbo_frame() {
        // The invariant the whole SOLAR design rests on.
        const { assert!(BLOCK_SIZE + SOLAR_OVERHEAD <= JUMBO_MTU) }
    }

    #[test]
    fn two_blocks_do_not_fit_standard_mtu() {
        // ...and it genuinely requires jumbo frames: a block + overhead
        // exceeds the standard 1500-byte MTU.
        const { assert!(BLOCK_SIZE + SOLAR_OVERHEAD > 1500) }
    }
}
