//! Recycled 4 KiB block buffers for the data path.
//!
//! SOLAR's "one packet = one 4 KiB block" invariant (§4.2) means the hot
//! loops of both the simulator and a real initiator allocate, fill, CRC and
//! free the same-sized payload buffer millions of times. [`BlockPool`] turns
//! that churn into pointer swaps: buffers are handed out as writable
//! [`PooledBuf`]s, frozen into cheaply-cloneable [`PooledBytes`], and return
//! to the pool's free list when the **last** clone drops — including clones
//! that crossed into [`Bytes`] via [`bytes::ByteStorage`], so retransmit
//! queues and DPU pipeline stages keep recycling working end to end.
//!
//! The pool never changes behaviour, only allocation counts: when the free
//! list is empty it falls back to a plain heap allocation, and oversized
//! requests bypass the pool entirely (they are handed a dedicated buffer
//! that simply drops instead of recycling).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use bytes::{ByteStorage, Bytes};

/// Counters describing how well a pool is recycling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers served from the free list (no allocation).
    pub hits: u64,
    /// Buffers served by a fresh heap allocation (cold pool or exhausted).
    pub misses: u64,
    /// Buffers returned to the free list on drop.
    pub recycled: u64,
    /// Buffers dropped for good (free list full, pool gone, or oversized).
    pub dropped: u64,
}

/// State shared by a pool and every buffer it has handed out. Buffers hold
/// a `Weak` so a dying pool never leaks its outstanding buffers — they just
/// stop recycling.
#[derive(Debug)]
struct Shared {
    block_size: usize,
    max_free: usize,
    free: Mutex<Vec<Box<[u8]>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    dropped: AtomicU64,
}

impl Shared {
    /// Lock the free list, recovering from poisoning: a poisoned mutex only
    /// means some other thread panicked mid push/pop, and a `Vec` is valid
    /// after any interrupted operation. This path runs inside `Drop` impls,
    /// where a second panic would abort the process — so keep recycling.
    fn free_list(&self) -> std::sync::MutexGuard<'_, Vec<Box<[u8]>>> {
        self.free
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Give `buf` back; called from buffer drops.
    fn put(&self, buf: Box<[u8]>) {
        if buf.len() == self.block_size {
            let mut free = self.free_list();
            if free.len() < self.max_free {
                free.push(buf);
                self.recycled.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }
}

fn return_buf(pool: &Weak<Shared>, buf: Box<[u8]>) {
    if buf.is_empty() {
        return; // moved-out sentinel (freeze) or unpooled zero-size
    }
    if let Some(shared) = pool.upgrade() {
        shared.put(buf);
    }
}

/// A slab of recycled, fixed-size (block-sized) byte buffers.
///
/// Cloning the pool is O(1) and shares the free list.
#[derive(Debug, Clone)]
pub struct BlockPool {
    shared: Arc<Shared>,
}

impl BlockPool {
    /// A pool of `block_size`-byte buffers keeping at most `max_free`
    /// buffers parked on the free list.
    ///
    /// # Panics
    /// Panics if `block_size` is zero (a zero-size block cannot be told
    /// apart from the moved-out sentinel, and is useless anyway).
    pub fn new(block_size: usize, max_free: usize) -> Self {
        assert!(block_size > 0, "block_size must be non-zero");
        BlockPool {
            shared: Arc::new(Shared {
                block_size,
                max_free,
                free: Mutex::new(Vec::new()),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                recycled: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// The fixed buffer size this pool recycles.
    pub fn block_size(&self) -> usize {
        self.shared.block_size
    }

    /// Buffers currently parked on the free list.
    pub fn free_blocks(&self) -> usize {
        self.shared.free_list().len()
    }

    /// Snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            recycled: self.shared.recycled.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
        }
    }

    /// Pop a recycled buffer or allocate a fresh one. Returns the raw
    /// storage plus whether it came from the allocator (fresh ⇒ zeroed).
    fn grab(&self) -> (Box<[u8]>, bool) {
        if let Some(buf) = self.shared.free_list().pop() {
            self.shared.hits.fetch_add(1, Ordering::Relaxed);
            (buf, false)
        } else {
            self.shared.misses.fetch_add(1, Ordering::Relaxed);
            (vec![0u8; self.shared.block_size].into_boxed_slice(), true)
        }
    }

    /// An empty writable buffer with `block_size` capacity. Append with
    /// `put_slice` (via [`bytes::BufMut`]), then [`PooledBuf::freeze`].
    pub fn take(&self) -> PooledBuf {
        let (buf, _) = self.grab();
        PooledBuf {
            buf,
            len: 0,
            pool: Arc::downgrade(&self.shared),
        }
    }

    /// A fully zeroed buffer of `block_size` length.
    pub fn take_zeroed(&self) -> PooledBuf {
        let (mut buf, fresh) = self.grab();
        if !fresh {
            buf.fill(0);
        }
        let len = buf.len();
        PooledBuf {
            buf,
            len,
            pool: Arc::downgrade(&self.shared),
        }
    }

    /// A buffer initialised with a copy of `data`.
    ///
    /// If `data` is longer than the pool's block size the buffer is a
    /// plain (unpooled) allocation — behaviour is identical, it just won't
    /// recycle.
    pub fn take_copy(&self, data: &[u8]) -> PooledBuf {
        if data.len() > self.shared.block_size {
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
            return PooledBuf {
                buf: data.to_vec().into_boxed_slice(),
                len: data.len(),
                pool: Weak::new(),
            };
        }
        let (mut buf, _) = self.grab();
        buf[..data.len()].copy_from_slice(data);
        PooledBuf {
            buf,
            len: data.len(),
            pool: Arc::downgrade(&self.shared),
        }
    }
}

/// A writable, uniquely-owned buffer checked out of a [`BlockPool`].
///
/// Deref/DerefMut expose the `len` initialised bytes; capacity is the
/// pool's block size. Dropping it un-frozen returns the storage to the
/// pool; [`PooledBuf::freeze`] converts it into the shareable
/// [`PooledBytes`] without copying.
#[derive(Debug)]
pub struct PooledBuf {
    /// Never empty while owned; emptied (moved out) by `freeze`.
    buf: Box<[u8]>,
    len: usize,
    pool: Weak<Shared>,
}

impl PooledBuf {
    /// Total writable capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Initialised length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bytes have been written yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set the length to `new_len`, filling any growth with `value`.
    ///
    /// # Panics
    /// Panics if `new_len` exceeds the capacity.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        assert!(new_len <= self.buf.len(), "pooled buffer overflow");
        if new_len > self.len {
            self.buf[self.len..new_len].fill(value);
        }
        self.len = new_len;
    }

    /// Freeze into an immutable, cheaply-cloneable [`PooledBytes`]. No
    /// copy: the storage moves into a shared handle whose last drop still
    /// recycles into the originating pool.
    pub fn freeze(mut self) -> PooledBytes {
        let buf = std::mem::take(&mut self.buf); // leaves the drop sentinel
        let len = self.len;
        let pool = std::mem::replace(&mut self.pool, Weak::new());
        PooledBytes {
            inner: Arc::new(PooledBlock { buf, len, pool }),
        }
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        return_buf(&self.pool, std::mem::take(&mut self.buf));
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf[..self.len]
    }
}

impl bytes::BufMut for PooledBuf {
    /// # Panics
    /// Panics if the slice does not fit in the remaining capacity — pooled
    /// buffers are fixed-size by design.
    fn put_slice(&mut self, src: &[u8]) {
        let new_len = self.len + src.len();
        assert!(new_len <= self.buf.len(), "pooled buffer overflow");
        self.buf[self.len..new_len].copy_from_slice(src);
        self.len = new_len;
    }
}

/// The frozen storage node: owns the raw buffer, recycles it on drop.
#[derive(Debug)]
struct PooledBlock {
    buf: Box<[u8]>,
    len: usize,
    pool: Weak<Shared>,
}

impl ByteStorage for PooledBlock {
    fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

impl Drop for PooledBlock {
    fn drop(&mut self) {
        return_buf(&self.pool, std::mem::take(&mut self.buf));
    }
}

/// An immutable, reference-counted view of a pooled block.
///
/// Clones are O(1); the storage returns to its pool when the last clone —
/// including any [`Bytes`] produced by [`PooledBytes::into_bytes`] — drops.
#[derive(Debug, Clone)]
pub struct PooledBytes {
    inner: Arc<PooledBlock>,
}

impl PooledBytes {
    /// Initialised length.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// True if the block holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// Convert into a [`Bytes`] handle without copying. The pooled storage
    /// rides along inside the `Bytes` and still recycles on last drop.
    pub fn into_bytes(self) -> Bytes {
        Bytes::from_shared(self.inner)
    }
}

impl std::ops::Deref for PooledBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.inner.as_slice()
    }
}

impl AsRef<[u8]> for PooledBytes {
    fn as_ref(&self) -> &[u8] {
        self.inner.as_slice()
    }
}

impl From<PooledBytes> for Bytes {
    fn from(p: PooledBytes) -> Bytes {
        p.into_bytes()
    }
}

// ---------------------------------------------------------------------------
// Per-thread default pool + shared zero region
// ---------------------------------------------------------------------------

/// Free-list bound for the per-thread default pool: enough to absorb a full
/// QP window of in-flight blocks without growing, small enough (16 MiB of
/// 4 KiB blocks) to be irrelevant next to the simulator's working set.
const DEFAULT_MAX_FREE: usize = 4096;

/// Size of the process-wide zero region served by [`zero_payload`]: covers
/// the largest I/O the experiments issue (256 KiB ablations) in one slice.
const ZERO_REGION: usize = 256 * 1024;

thread_local! {
    static TL_POOL: RefCell<Option<BlockPool>> = const { RefCell::new(None) };
}

/// Run `f` with this thread's default [`BLOCK_SIZE`](crate::BLOCK_SIZE)
/// pool, creating it on first use.
pub fn with_default_pool<R>(f: impl FnOnce(&BlockPool) -> R) -> R {
    TL_POOL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let pool = slot.get_or_insert_with(|| BlockPool::new(crate::BLOCK_SIZE, DEFAULT_MAX_FREE));
        f(pool)
    })
}

/// Counters of this thread's default pool (zeros if never used).
pub fn default_pool_stats() -> PoolStats {
    TL_POOL.with(|slot| {
        slot.borrow()
            .as_ref()
            .map(BlockPool::stats)
            .unwrap_or_default()
    })
}

/// An empty writable 4 KiB buffer from this thread's default pool.
pub fn take_block() -> PooledBuf {
    with_default_pool(BlockPool::take)
}

/// A zeroed 4 KiB block as `Bytes`, recycled via the default pool.
pub fn block_zeroed() -> Bytes {
    with_default_pool(|p| p.take_zeroed().freeze().into_bytes())
}

/// Copy `data` into a pooled block and return it as `Bytes`. Falls back to
/// a plain allocation when `data` exceeds 4 KiB.
pub fn block_from(data: &[u8]) -> Bytes {
    with_default_pool(|p| p.take_copy(data).freeze().into_bytes())
}

/// An all-zero payload of arbitrary length in O(1): a view into one shared,
/// immutable, process-wide zero region (latency/throughput simulations
/// carry zeroed payloads whose *length* is what matters). Lengths above the
/// region size fall back to a plain allocation.
pub fn zero_payload(len: usize) -> Bytes {
    if len == 0 {
        return Bytes::new();
    }
    if len <= ZERO_REGION {
        static ZEROS: OnceLock<Bytes> = OnceLock::new();
        return ZEROS
            .get_or_init(|| Bytes::from(vec![0u8; ZERO_REGION]))
            .slice(..len);
    }
    Bytes::from(vec![0u8; len])
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BufMut;

    #[test]
    fn buffers_recycle_through_freeze_and_bytes() {
        let pool = BlockPool::new(4096, 8);
        let mut buf = pool.take();
        buf.put_slice(b"block data");
        let frozen = buf.freeze();
        let as_bytes: Bytes = frozen.clone().into_bytes();
        assert_eq!(&as_bytes[..], b"block data");
        drop(frozen);
        assert_eq!(pool.free_blocks(), 0, "a Bytes clone still holds it");
        drop(as_bytes);
        assert_eq!(pool.free_blocks(), 1, "last drop recycles");
        let stats = pool.stats();
        assert_eq!((stats.misses, stats.recycled), (1, 1));
    }

    #[test]
    fn steady_state_serves_from_free_list() {
        let pool = BlockPool::new(4096, 8);
        for _ in 0..100 {
            let b = pool.take_zeroed();
            drop(b.freeze());
        }
        let stats = pool.stats();
        assert_eq!(stats.misses, 1, "one cold allocation, then reuse");
        assert_eq!(stats.hits, 99);
    }

    #[test]
    fn recycled_zeroed_buffers_are_actually_zero() {
        let pool = BlockPool::new(64, 8);
        {
            let mut dirty = pool.take_zeroed();
            dirty.fill(0xAB);
        }
        let clean = pool.take_zeroed();
        assert!(clean.iter().all(|&b| b == 0));
        assert_eq!(clean.len(), 64);
    }

    #[test]
    fn free_list_is_bounded() {
        let pool = BlockPool::new(64, 2);
        let bufs: Vec<_> = (0..5).map(|_| pool.take()).collect();
        drop(bufs);
        assert_eq!(pool.free_blocks(), 2);
        assert_eq!(pool.stats().dropped, 3);
    }

    #[test]
    fn oversized_copy_falls_back_without_recycling() {
        let pool = BlockPool::new(16, 8);
        let big = pool.take_copy(&[7u8; 100]);
        assert_eq!(big.len(), 100);
        assert_eq!(&big[..4], &[7, 7, 7, 7]);
        drop(big);
        assert_eq!(pool.free_blocks(), 0, "oversized buffers do not recycle");
    }

    #[test]
    fn pool_death_orphans_outstanding_buffers_safely() {
        let pool = BlockPool::new(64, 8);
        let held = pool.take_copy(b"still valid");
        drop(pool);
        assert_eq!(&held[..], b"still valid");
        drop(held); // must not panic; buffer just frees
    }

    #[test]
    fn resize_and_bufmut_respect_capacity() {
        let pool = BlockPool::new(32, 4);
        let mut b = pool.take();
        b.put_u32(0xDEAD_BEEF);
        b.resize(8, 0xFF);
        assert_eq!(&b[..], &[0xDE, 0xAD, 0xBE, 0xEF, 0xFF, 0xFF, 0xFF, 0xFF]);
        assert_eq!(b.capacity(), 32);
    }

    #[test]
    fn zero_payload_is_shared_and_correct() {
        let a = zero_payload(4096);
        let b = zero_payload(256 * 1024);
        assert_eq!(a.len(), 4096);
        assert_eq!(b.len(), 256 * 1024);
        assert!(a.iter().all(|&x| x == 0));
        assert!(zero_payload(0).is_empty());
        // Oversized lengths still work (plain allocation fallback).
        assert_eq!(zero_payload(ZERO_REGION + 1).len(), ZERO_REGION + 1);
    }

    #[test]
    fn default_pool_helpers_recycle() {
        let before = default_pool_stats();
        for _ in 0..10 {
            drop(block_zeroed());
            drop(block_from(b"abc"));
        }
        let after = default_pool_stats();
        let new_misses = after.misses - before.misses;
        assert!(new_misses <= 1, "steady state allocates at most once");
    }
}
