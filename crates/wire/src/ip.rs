//! Minimal IPv4 / UDP / TCP header codecs.
//!
//! The simulator mostly moves structured packets, but the real-socket
//! examples and the SOLAR wire format need honest byte-level encodings, so
//! the headers here are real: correct field layout, network byte order and
//! internet checksums.

use bytes::{Buf, BufMut};

/// Errors produced when decoding malformed headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Input shorter than the fixed header.
    Truncated,
    /// A version / length field is inconsistent.
    Malformed,
    /// Checksum verification failed.
    BadChecksum,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated packet"),
            WireError::Malformed => write!(f, "malformed header"),
            WireError::BadChecksum => write!(f, "bad checksum"),
        }
    }
}

impl std::error::Error for WireError {}

/// The RFC 1071 internet checksum over `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// An IPv4 header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Payload protocol (17 = UDP, 6 = TCP).
    pub protocol: u8,
    /// Time to live.
    pub ttl: u8,
    /// Total length including this header.
    pub total_len: u16,
    /// DSCP/ECN byte; SOLAR uses a dedicated queue, signalled via DSCP.
    pub tos: u8,
}

impl Ipv4Header {
    /// Encoded size (no options).
    pub const LEN: usize = 20;
    /// Protocol number for UDP.
    pub const PROTO_UDP: u8 = 17;
    /// Protocol number for TCP.
    pub const PROTO_TCP: u8 = 6;

    /// Encode into `buf` with a correct header checksum.
    pub fn encode(&self, buf: &mut impl BufMut) {
        let mut hdr = [0u8; Self::LEN];
        hdr[0] = 0x45; // v4, IHL 5
        hdr[1] = self.tos;
        hdr[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        hdr[8] = self.ttl;
        hdr[9] = self.protocol;
        hdr[12..16].copy_from_slice(&self.src.to_be_bytes());
        hdr[16..20].copy_from_slice(&self.dst.to_be_bytes());
        let csum = internet_checksum(&hdr);
        hdr[10..12].copy_from_slice(&csum.to_be_bytes());
        buf.put_slice(&hdr);
    }

    /// Decode from `buf`, verifying version and checksum.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        if buf.remaining() < Self::LEN {
            return Err(WireError::Truncated);
        }
        let mut hdr = [0u8; Self::LEN];
        buf.copy_to_slice(&mut hdr);
        if hdr[0] != 0x45 {
            return Err(WireError::Malformed);
        }
        if internet_checksum(&hdr) != 0 {
            return Err(WireError::BadChecksum);
        }
        Ok(Ipv4Header {
            src: u32::from_be_bytes([hdr[12], hdr[13], hdr[14], hdr[15]]),
            dst: u32::from_be_bytes([hdr[16], hdr[17], hdr[18], hdr[19]]),
            protocol: hdr[9],
            ttl: hdr[8],
            total_len: u16::from_be_bytes([hdr[2], hdr[3]]),
            tos: hdr[1],
        })
    }
}

/// A UDP header. SOLAR's multi-path design uses the **source port as the
/// path identifier** (§4.5): ECMP hashes the 5-tuple, so distinct source
/// ports pin distinct fabric paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port — SOLAR's path id lives here.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header + payload.
    pub len: u16,
}

impl UdpHeader {
    /// Encoded size.
    pub const LEN: usize = 8;

    /// Encode into `buf` (checksum 0 = disabled, as permitted for IPv4;
    /// SOLAR's payload is protected end-to-end by the block CRC instead).
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(self.len);
        buf.put_u16(0);
    }

    /// Decode from `buf`.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        if buf.remaining() < Self::LEN {
            return Err(WireError::Truncated);
        }
        let src_port = buf.get_u16();
        let dst_port = buf.get_u16();
        let len = buf.get_u16();
        let _csum = buf.get_u16();
        if (len as usize) < Self::LEN {
            return Err(WireError::Malformed);
        }
        Ok(UdpHeader {
            src_port,
            dst_port,
            len,
        })
    }
}

/// Tiny local stand-in for the `bitflags` crate (not in the offline set).
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident: $ty:ty {
            $( $(#[$fmeta:meta])* const $flag:ident = $val:expr; )*
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
        pub struct $name(pub $ty);
        impl $name {
            $( $(#[$fmeta])* pub const $flag: $name = $name($val); )*
            /// No flags set.
            pub const fn empty() -> Self { $name(0) }
            /// True if every bit of `other` is set in `self`.
            pub const fn contains(self, other: $name) -> bool {
                self.0 & other.0 == other.0
            }
            /// Union of two flag sets.
            pub const fn union(self, other: $name) -> $name { $name(self.0 | other.0) }
        }
        impl core::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name { $name(self.0 | rhs.0) }
        }
    };
}

bitflags_lite! {
    /// TCP flag bits.
    pub struct TcpFlags: u8 {
        /// FIN — sender is done.
        const FIN = 0x01;
        /// SYN — synchronize sequence numbers.
        const SYN = 0x02;
        /// RST — abort the connection.
        const RST = 0x04;
        /// PSH — push buffered data to the application.
        const PSH = 0x08;
        /// ACK — acknowledgment field is valid.
        const ACK = 0x10;
    }
}

/// A TCP header (no options beyond MSS implied by config).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number (valid when ACK set).
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// Encoded size (no options).
    pub const LEN: usize = 20;

    /// Encode into `buf` (checksum omitted — the simulator's fabric is the
    /// only consumer; real-socket examples run SOLAR/UDP, not TCP).
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u32(self.seq);
        buf.put_u32(self.ack);
        buf.put_u8(0x50); // data offset 5
        buf.put_u8(self.flags.0);
        buf.put_u16(self.window);
        buf.put_u16(0); // checksum
        buf.put_u16(0); // urgent
    }

    /// Decode from `buf`.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        if buf.remaining() < Self::LEN {
            return Err(WireError::Truncated);
        }
        let src_port = buf.get_u16();
        let dst_port = buf.get_u16();
        let seq = buf.get_u32();
        let ack = buf.get_u32();
        let off = buf.get_u8();
        if off >> 4 != 5 {
            return Err(WireError::Malformed);
        }
        let flags = TcpFlags(buf.get_u8());
        let window = buf.get_u16();
        let _csum = buf.get_u16();
        let _urg = buf.get_u16();
        Ok(TcpHeader {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn checksum_known_vector() {
        // Classic RFC 1071 example.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn ipv4_roundtrip() {
        let hdr = Ipv4Header {
            src: 0x0a000001,
            dst: 0x0a000102,
            protocol: Ipv4Header::PROTO_UDP,
            ttl: 64,
            total_len: 1500,
            tos: 0x08,
        };
        let mut buf = BytesMut::new();
        hdr.encode(&mut buf);
        assert_eq!(buf.len(), Ipv4Header::LEN);
        let got = Ipv4Header::decode(&mut buf.freeze()).unwrap();
        assert_eq!(got, hdr);
    }

    #[test]
    fn ipv4_detects_corruption() {
        let hdr = Ipv4Header {
            src: 1,
            dst: 2,
            protocol: 6,
            ttl: 5,
            total_len: 40,
            tos: 0,
        };
        let mut buf = BytesMut::new();
        hdr.encode(&mut buf);
        buf[13] ^= 0xFF;
        assert_eq!(
            Ipv4Header::decode(&mut buf.freeze()),
            Err(WireError::BadChecksum)
        );
    }

    #[test]
    fn udp_roundtrip() {
        let hdr = UdpHeader {
            src_port: 47001, // a SOLAR path id
            dst_port: 9000,
            len: 4096 + 8,
        };
        let mut buf = BytesMut::new();
        hdr.encode(&mut buf);
        let got = UdpHeader::decode(&mut buf.freeze()).unwrap();
        assert_eq!(got, hdr);
    }

    #[test]
    fn udp_rejects_short_len() {
        let mut buf = BytesMut::new();
        UdpHeader {
            src_port: 1,
            dst_port: 2,
            len: 4,
        }
        .encode(&mut buf);
        assert_eq!(
            UdpHeader::decode(&mut buf.freeze()),
            Err(WireError::Malformed)
        );
    }

    #[test]
    fn tcp_roundtrip() {
        let hdr = TcpHeader {
            src_port: 1234,
            dst_port: 80,
            seq: 0xdeadbeef,
            ack: 0x01020304,
            flags: TcpFlags::SYN | TcpFlags::ACK,
            window: 65535,
        };
        let mut buf = BytesMut::new();
        hdr.encode(&mut buf);
        assert_eq!(buf.len(), TcpHeader::LEN);
        let got = TcpHeader::decode(&mut buf.freeze()).unwrap();
        assert_eq!(got, hdr);
    }

    #[test]
    fn flags_ops() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::FIN));
    }

    #[test]
    fn truncated_errors() {
        let short = [0u8; 4];
        assert_eq!(
            Ipv4Header::decode(&mut &short[..]),
            Err(WireError::Truncated)
        );
        assert_eq!(
            TcpHeader::decode(&mut &short[..]),
            Err(WireError::Truncated)
        );
        assert_eq!(
            UdpHeader::decode(&mut &short[..]),
            Err(WireError::Truncated)
        );
    }
}
