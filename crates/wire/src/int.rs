//! In-band network telemetry (INT).
//!
//! Switches on a SOLAR path stamp per-hop state into data packets; the
//! receiver echoes the stack back in the per-packet ACK, and the sender's
//! HPCC-style congestion control computes link utilization from it
//! (§4.5 and the HPCC paper the authors cite).

use bytes::{Buf, BufMut};

use crate::ip::WireError;

/// One hop's telemetry record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntHop {
    /// Switch identifier.
    pub device_id: u32,
    /// Egress queue depth in bytes when the packet departed.
    pub queue_bytes: u32,
    /// Bytes transmitted on the egress port so far (tx byte counter).
    pub tx_bytes: u64,
    /// Switch-local timestamp in nanoseconds.
    pub ts_ns: u64,
    /// Egress link capacity in Mbps.
    pub link_mbps: u32,
}

impl IntHop {
    /// Encoded size of one hop record.
    pub const LEN: usize = 28;
}

/// A stack of per-hop INT records, appended in path order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntStack {
    /// Hop records from source ToR to destination ToR.
    pub hops: Vec<IntHop>,
}

/// Maximum hops encodable (FN spans at most ToR-Spine-Core-Spine-ToR plus
/// DC routers; 15 is generous headroom).
pub const MAX_INT_HOPS: usize = 15;

impl IntStack {
    /// An empty stack.
    pub fn new() -> Self {
        IntStack::default()
    }

    /// An empty stack with room for a full fabric path ([`MAX_INT_HOPS`]
    /// records) already reserved, so per-hop stamping during traversal
    /// never reallocates. Prefer this when attaching a stack to a packet
    /// about to be injected into the fabric.
    pub fn with_path_capacity() -> Self {
        IntStack {
            hops: Vec::with_capacity(MAX_INT_HOPS),
        }
    }

    /// Append a hop record (drops silently beyond [`MAX_INT_HOPS`], like
    /// real INT implementations that cap the stack).
    pub fn push(&mut self, hop: IntHop) {
        if self.hops.len() < MAX_INT_HOPS {
            self.hops.push(hop);
        }
    }

    /// Bytes this stack occupies on the wire.
    pub fn wire_len(&self) -> usize {
        1 + self.hops.len() * IntHop::LEN
    }

    /// Encode as count byte + records.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(self.hops.len() as u8);
        for h in &self.hops {
            buf.put_u32(h.device_id);
            buf.put_u32(h.queue_bytes);
            buf.put_u64(h.tx_bytes);
            buf.put_u64(h.ts_ns);
            buf.put_u32(h.link_mbps);
        }
    }

    /// Decode count byte + records.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        let n = buf.get_u8() as usize;
        if n > MAX_INT_HOPS {
            return Err(WireError::Malformed);
        }
        if buf.remaining() < n * IntHop::LEN {
            return Err(WireError::Truncated);
        }
        let mut hops = Vec::with_capacity(n);
        for _ in 0..n {
            hops.push(IntHop {
                device_id: buf.get_u32(),
                queue_bytes: buf.get_u32(),
                tx_bytes: buf.get_u64(),
                ts_ns: buf.get_u64(),
                link_mbps: buf.get_u32(),
            });
        }
        Ok(IntStack { hops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn hop(i: u32) -> IntHop {
        IntHop {
            device_id: i,
            queue_bytes: i * 1000,
            tx_bytes: i as u64 * 1_000_000,
            ts_ns: i as u64 * 500,
            link_mbps: 25_000,
        }
    }

    #[test]
    fn roundtrip() {
        let mut stack = IntStack::new();
        for i in 0..5 {
            stack.push(hop(i));
        }
        let mut buf = BytesMut::new();
        stack.encode(&mut buf);
        assert_eq!(buf.len(), stack.wire_len());
        let got = IntStack::decode(&mut buf.freeze()).unwrap();
        assert_eq!(got, stack);
    }

    #[test]
    fn empty_roundtrip() {
        let stack = IntStack::new();
        let mut buf = BytesMut::new();
        stack.encode(&mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(IntStack::decode(&mut buf.freeze()).unwrap(), stack);
    }

    #[test]
    fn caps_at_max_hops() {
        let mut stack = IntStack::new();
        for i in 0..40 {
            stack.push(hop(i));
        }
        assert_eq!(stack.hops.len(), MAX_INT_HOPS);
    }

    #[test]
    fn rejects_truncated_records() {
        let mut stack = IntStack::new();
        stack.push(hop(1));
        let mut buf = BytesMut::new();
        stack.encode(&mut buf);
        let short = buf.freeze().slice(..10);
        assert_eq!(IntStack::decode(&mut &short[..]), Err(WireError::Truncated));
    }

    #[test]
    fn rejects_hop_count_overflow() {
        let mut buf = BytesMut::new();
        buf.put_u8(200);
        assert_eq!(
            IntStack::decode(&mut buf.freeze()),
            Err(WireError::Malformed)
        );
    }
}
