//! The SOLAR EBS header — the heart of "one block, one packet".
//!
//! Every SOLAR data packet is a self-contained storage operation on a
//! single 4 KiB block (Fig. 12/13): the EBS header carries everything the
//! receiving pipeline needs (disk, segment, block address, CRC), so the
//! hardware can process each packet independently with no reassembly
//! buffers, no connection state and no ordering requirements.

use bytes::{Buf, BufMut};

use crate::ip::WireError;

/// EBS operation carried by a SOLAR packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EbsOp {
    /// Carry one block of WRITE data to a block server.
    WriteBlock = 1,
    /// Per-packet acknowledgment of a WriteBlock (also the CC signal).
    WriteAck = 2,
    /// Request one block (or a short run of blocks) of READ data.
    ReadReq = 3,
    /// Carry one block of READ data back to the compute side.
    ReadResp = 4,
    /// Negative ack: the server could not process the block.
    Nack = 5,
    /// Path liveness probe.
    Probe = 6,
    /// Probe response.
    ProbeAck = 7,
    /// Receiver-side gap report: the server observed `path_seq` arrive on
    /// `path_id` while `block_addr..path_seq` never did. Under per-path
    /// FIFO delivery, those sequences are definitively lost — this is the
    /// "out-of-order arrivals" loss detection of §4.5, done with one
    /// counter per path at the receiver.
    GapNack = 8,
}

impl EbsOp {
    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            1 => EbsOp::WriteBlock,
            2 => EbsOp::WriteAck,
            3 => EbsOp::ReadReq,
            4 => EbsOp::ReadResp,
            5 => EbsOp::Nack,
            6 => EbsOp::Probe,
            7 => EbsOp::ProbeAck,
            8 => EbsOp::GapNack,
            _ => return Err(WireError::Malformed),
        })
    }

    /// True for ops that carry a block payload.
    pub fn carries_data(self) -> bool {
        matches!(self, EbsOp::WriteBlock | EbsOp::ReadResp)
    }
}

/// Header flag: payload is encrypted by the SEC stage.
pub const FLAG_ENCRYPTED: u8 = 0x01;
/// Header flag: this packet is a retransmission.
pub const FLAG_RETRANSMIT: u8 = 0x02;
/// Header flag: receiver should echo an INT stack in the ACK.
pub const FLAG_INT_REQUEST: u8 = 0x04;
/// Header flag: ECN congestion-experienced echo. A RED-marked data
/// packet has the mark copied into this bit by the receiving endpoint
/// (the responder copies the request header into its ack, so the echo
/// rides back to the sender for free), where the DCQCN-style controller
/// consumes it.
pub const FLAG_ECN_ECHO: u8 = 0x08;

/// The SOLAR EBS header (fixed 56 bytes on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EbsHeader {
    /// Protocol version (currently 1).
    pub version: u8,
    /// Operation.
    pub op: EbsOp,
    /// Flag bits ([`FLAG_ENCRYPTED`], ...).
    pub flags: u8,
    /// Path id (0..n_paths): which of the persistent multi-path UDP source
    /// ports this packet was sprayed onto.
    pub path_id: u8,
    /// Virtual disk id.
    pub vd_id: u64,
    /// RPC id, unique per (compute server, in-flight request).
    pub rpc_id: u64,
    /// Packet index within the RPC (one per block).
    pub pkt_id: u16,
    /// Total packets in this RPC.
    pub total_pkts: u16,
    /// Block address (LBA, in 4 KiB block units) on the virtual disk.
    pub block_addr: u64,
    /// Payload length in bytes (≤ block size).
    pub len: u32,
    /// Raw CRC32 of the (padded) block payload, computed by the CRC stage.
    pub payload_crc: u32,
    /// Per-path sequence number: increments for every packet sent on this
    /// path. ACKed gaps signal loss for selective retransmission (§4.5
    /// "out-of-order arrivals ... in the same path").
    pub path_seq: u32,
    /// Segment id on the physical disk, from the Block table lookup.
    pub segment_id: u64,
}

impl EbsHeader {
    /// Encoded size.
    pub const LEN: usize = 56;
    /// Current protocol version.
    pub const VERSION: u8 = 1;

    /// Encode into `buf`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(self.version);
        buf.put_u8(self.op as u8);
        buf.put_u8(self.flags);
        buf.put_u8(self.path_id);
        buf.put_u32(0); // reserved / pad to 8-byte alignment
        buf.put_u64(self.vd_id);
        buf.put_u64(self.rpc_id);
        buf.put_u16(self.pkt_id);
        buf.put_u16(self.total_pkts);
        buf.put_u32(self.len);
        buf.put_u64(self.block_addr);
        buf.put_u32(self.payload_crc);
        buf.put_u32(self.path_seq);
        buf.put_u64(self.segment_id);
    }

    /// Decode from `buf`.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        if buf.remaining() < Self::LEN {
            return Err(WireError::Truncated);
        }
        let version = buf.get_u8();
        if version != Self::VERSION {
            return Err(WireError::Malformed);
        }
        let op = EbsOp::from_u8(buf.get_u8())?;
        let flags = buf.get_u8();
        let path_id = buf.get_u8();
        let _pad = buf.get_u32();
        let vd_id = buf.get_u64();
        let rpc_id = buf.get_u64();
        let pkt_id = buf.get_u16();
        let total_pkts = buf.get_u16();
        let len = buf.get_u32();
        let block_addr = buf.get_u64();
        let payload_crc = buf.get_u32();
        let path_seq = buf.get_u32();
        let segment_id = buf.get_u64();
        Ok(EbsHeader {
            version,
            op,
            flags,
            path_id,
            vd_id,
            rpc_id,
            pkt_id,
            total_pkts,
            block_addr,
            len,
            payload_crc,
            path_seq,
            segment_id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn sample() -> EbsHeader {
        EbsHeader {
            version: 1,
            op: EbsOp::WriteBlock,
            flags: FLAG_ENCRYPTED,
            path_id: 3,
            vd_id: 42,
            rpc_id: 0xDEAD_BEEF_CAFE,
            pkt_id: 7,
            total_pkts: 16,
            block_addr: 0x0F,
            len: 4096,
            payload_crc: 0x1234_5678,
            path_seq: 1234,
            segment_id: 99,
        }
    }

    #[test]
    fn roundtrip() {
        let hdr = sample();
        let mut buf = BytesMut::new();
        hdr.encode(&mut buf);
        assert_eq!(buf.len(), EbsHeader::LEN);
        let got = EbsHeader::decode(&mut buf.freeze()).unwrap();
        assert_eq!(got, hdr);
    }

    #[test]
    fn all_ops_roundtrip() {
        for op in [
            EbsOp::WriteBlock,
            EbsOp::WriteAck,
            EbsOp::ReadReq,
            EbsOp::ReadResp,
            EbsOp::Nack,
            EbsOp::Probe,
            EbsOp::ProbeAck,
            EbsOp::GapNack,
        ] {
            let mut hdr = sample();
            hdr.op = op;
            let mut buf = BytesMut::new();
            hdr.encode(&mut buf);
            assert_eq!(EbsHeader::decode(&mut buf.freeze()).unwrap().op, op);
        }
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = BytesMut::new();
        sample().encode(&mut buf);
        buf[0] = 9;
        assert_eq!(
            EbsHeader::decode(&mut buf.freeze()),
            Err(WireError::Malformed)
        );
    }

    #[test]
    fn rejects_bad_op() {
        let mut buf = BytesMut::new();
        sample().encode(&mut buf);
        buf[1] = 0xEE;
        assert_eq!(
            EbsHeader::decode(&mut buf.freeze()),
            Err(WireError::Malformed)
        );
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = BytesMut::new();
        sample().encode(&mut buf);
        let short = buf.freeze().slice(..EbsHeader::LEN - 1);
        assert_eq!(
            EbsHeader::decode(&mut &short[..]),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn data_ops() {
        assert!(EbsOp::WriteBlock.carries_data());
        assert!(EbsOp::ReadResp.carries_data());
        assert!(!EbsOp::WriteAck.carries_data());
        assert!(!EbsOp::Probe.carries_data());
    }
}
