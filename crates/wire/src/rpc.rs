//! LUNA's RPC framing over a byte stream.
//!
//! LUNA carries storage RPCs over its user-space TCP: each message is a
//! length-prefixed frame with a fixed header and an optional data payload.
//! Because TCP is a byte stream, the receiver needs an incremental decoder
//! ([`FrameDecoder`]) that tolerates frames split across arbitrary segment
//! boundaries — precisely the buffering/reassembly machinery that SOLAR's
//! one-block-one-packet design later eliminates.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::ip::WireError;

/// RPC method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RpcMethod {
    /// Write payload to (vd, offset).
    Write = 1,
    /// Read `len` bytes from (vd, offset).
    Read = 2,
    /// Successful write response.
    WriteResp = 3,
    /// Read response carrying payload.
    ReadResp = 4,
    /// Failure response.
    Error = 5,
}

impl RpcMethod {
    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            1 => RpcMethod::Write,
            2 => RpcMethod::Read,
            3 => RpcMethod::WriteResp,
            4 => RpcMethod::ReadResp,
            5 => RpcMethod::Error,
            _ => return Err(WireError::Malformed),
        })
    }
}

/// One RPC frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcFrame {
    /// Request/response correlation id.
    pub rpc_id: u64,
    /// Method.
    pub method: RpcMethod,
    /// Virtual disk id.
    pub vd_id: u64,
    /// Byte offset on the virtual disk.
    pub offset: u64,
    /// Requested length (READ) — payload length otherwise.
    pub len: u32,
    /// Data payload (may be empty).
    pub payload: Bytes,
}

/// Frame header bytes before the payload: u32 total_len + fields.
const HEADER_LEN: usize = 4 + 8 + 1 + 3 + 8 + 8 + 4;
/// Upper bound on a frame — the paper observes FN RPCs stay under 128 KiB
/// (Fig. 5); we allow 1 MiB for slack while still rejecting garbage
/// lengths from corrupted streams.
const MAX_FRAME: usize = 1 << 20;

impl RpcFrame {
    /// Total encoded size of this frame.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Encode into `buf`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32((HEADER_LEN + self.payload.len()) as u32);
        buf.put_u64(self.rpc_id);
        buf.put_u8(self.method as u8);
        buf.put_slice(&[0; 3]); // pad
        buf.put_u64(self.vd_id);
        buf.put_u64(self.offset);
        buf.put_u32(self.len);
        buf.put_slice(&self.payload);
    }

    /// Encode to a standalone byte buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        self.encode(&mut buf);
        buf.freeze()
    }
}

/// Incremental frame decoder for a TCP byte stream.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Bytes buffered but not yet decoded.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Feed newly received stream bytes.
    pub fn extend(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Try to decode the next complete frame; `Ok(None)` means more bytes
    /// are needed.
    pub fn next_frame(&mut self) -> Result<Option<RpcFrame>, WireError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let total =
            u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if !(HEADER_LEN..=MAX_FRAME).contains(&total) {
            return Err(WireError::Malformed);
        }
        if self.buf.len() < total {
            return Ok(None);
        }
        let mut frame = self.buf.split_to(total).freeze();
        let _total = frame.get_u32();
        let rpc_id = frame.get_u64();
        let method = RpcMethod::from_u8(frame.get_u8())?;
        frame.advance(3);
        let vd_id = frame.get_u64();
        let offset = frame.get_u64();
        let len = frame.get_u32();
        Ok(Some(RpcFrame {
            rpc_id,
            method,
            vd_id,
            offset,
            len,
            payload: frame,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(payload_len: usize) -> RpcFrame {
        RpcFrame {
            rpc_id: 77,
            method: RpcMethod::Write,
            vd_id: 3,
            offset: 8192,
            len: payload_len as u32,
            payload: Bytes::from(vec![0xCD; payload_len]),
        }
    }

    #[test]
    fn roundtrip() {
        let frame = sample(4096);
        let mut dec = FrameDecoder::new();
        dec.extend(&frame.to_bytes());
        let got = dec.next_frame().unwrap().unwrap();
        assert_eq!(got, frame);
        assert!(dec.next_frame().unwrap().is_none());
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn split_across_arbitrary_boundaries() {
        let frame = sample(1000);
        let bytes = frame.to_bytes();
        // Feed one byte at a time: the decoder must never yield a frame
        // early or lose bytes.
        let mut dec = FrameDecoder::new();
        let mut decoded = None;
        for (i, b) in bytes.iter().enumerate() {
            dec.extend(&[*b]);
            if let Some(f) = dec.next_frame().unwrap() {
                assert_eq!(i, bytes.len() - 1, "frame yielded early");
                decoded = Some(f);
            }
        }
        assert_eq!(decoded.unwrap(), frame);
    }

    #[test]
    fn back_to_back_frames() {
        let a = sample(10);
        let mut b = sample(20);
        b.rpc_id = 78;
        b.method = RpcMethod::Read;
        let mut stream = BytesMut::new();
        a.encode(&mut stream);
        b.encode(&mut stream);
        let mut dec = FrameDecoder::new();
        dec.extend(&stream);
        assert_eq!(dec.next_frame().unwrap().unwrap(), a);
        assert_eq!(dec.next_frame().unwrap().unwrap(), b);
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn rejects_insane_length() {
        let mut dec = FrameDecoder::new();
        dec.extend(&(100_000_000u32).to_be_bytes());
        assert_eq!(dec.next_frame(), Err(WireError::Malformed));
    }

    #[test]
    fn rejects_bad_method() {
        let frame = sample(4);
        let mut bytes = BytesMut::from(&frame.to_bytes()[..]);
        bytes[12] = 0xFF; // method byte
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        assert_eq!(dec.next_frame(), Err(WireError::Malformed));
    }

    #[test]
    fn empty_payload_frames() {
        let mut frame = sample(0);
        frame.method = RpcMethod::WriteResp;
        let mut dec = FrameDecoder::new();
        dec.extend(&frame.to_bytes());
        assert_eq!(dec.next_frame().unwrap().unwrap(), frame);
    }
}
