//! # ebs-cc — pluggable congestion control
//!
//! The paper pairs SOLAR's per-packet ACKs with HPCC-style INT-driven
//! congestion control (§4.8); Laminar-style designs show that making CC a
//! pluggable module is what lets one stack compare algorithms under
//! identical workloads. This crate extracts that seam: a sans-io
//! [`CongestionControl`] trait plus four implementations —
//!
//! * [`Hpcc`] — the paper's INT-driven controller (ported verbatim from
//!   `ebs-solar`): per-ACK max-hop utilization `U = qlen/(B·T) + txRate/B`
//!   drives a multiplicative move toward `η` with bounded additive
//!   increase against a per-RTT reference window.
//! * [`Swift`] — a Swift-style delay-based controller: AIMD on the srtt
//!   samples every ACK already produces, targeting a fixed end-to-end
//!   delay budget. Needs no switch support at all.
//! * [`Dcqcn`] — a DCQCN-style ECN controller for the RDMA baseline:
//!   RED-marked ECN bits (echoed by the receiver) feed an `α` EWMA that
//!   scales multiplicative cuts; recovery is DCQCN's fast-recovery /
//!   additive-increase stage machine.
//! * [`Fixed`] — the null controller: a constant window, preserving the
//!   pre-trait behavior of the non-INT SOLAR path and the RDMA baseline.
//!
//! Every controller is a pure state machine: the host injects time and
//! ACK signals (`on_ack`), timeouts (`on_timeout`) and reads back the
//! window. Windows are in **bytes** everywhere; packet-granular hosts
//! (RDMA) divide by MTU. Nothing here touches a clock, a socket or
//! ambient randomness — the crate sits in the lint sans-io, determinism
//! and panic-discipline tiers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dcqcn;
mod fixed;
mod hpcc;
mod swift;

pub use dcqcn::{Dcqcn, DcqcnConfig};
pub use fixed::{Fixed, FixedConfig};
pub use hpcc::{Hpcc, HpccConfig};
pub use swift::{Swift, SwiftConfig};

use ebs_sim::{SimDuration, SimTime};
use ebs_wire::IntStack;

/// Everything one ACK can tell a congestion controller. Hosts fill in
/// whatever their transport produces; controllers consume the subset
/// they understand (HPCC reads `int`, Swift reads `rtt_sample`, DCQCN
/// reads `ecn`) and ignore the rest, so one call site serves every
/// algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct AckSignal<'a> {
    /// Karn-filtered RTT sample for the acked packet, when the host has
    /// one (retransmitted packets yield `None`).
    pub rtt_sample: Option<SimDuration>,
    /// INT stack echoed by the ACK, when telemetry is enabled.
    pub int: Option<&'a IntStack>,
    /// ECN congestion-experienced mark echoed by the receiver.
    pub ecn: bool,
}

/// A congestion-window state machine. Sans-io: time arrives as an
/// argument, signals as [`AckSignal`]s, and the only output is
/// [`window`](CongestionControl::window).
pub trait CongestionControl {
    /// Feed one ACK's worth of congestion signals.
    fn on_ack(&mut self, now: SimTime, sig: &AckSignal<'_>);
    /// A retransmission timeout fired: strong congestion/failure signal.
    fn on_timeout(&mut self);
    /// Current congestion window in bytes.
    fn window(&self) -> f64;
    /// Stable algorithm name (report keys, bench tables).
    fn name(&self) -> &'static str;
}

/// Algorithm selector carried by host configs (SOLAR, TCP, RDMA, the
/// testbed and the chaos envelope all pick a controller with this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CcAlgo {
    /// INT-driven HPCC (the paper's choice for SOLAR).
    #[default]
    Hpcc,
    /// Delay-based Swift-style AIMD.
    Swift,
    /// ECN-driven DCQCN-style controller.
    Dcqcn,
    /// Constant window (no congestion control).
    Fixed,
}

impl CcAlgo {
    /// Stable lowercase name (matches `CongestionControl::name`).
    pub fn name(self) -> &'static str {
        match self {
            CcAlgo::Hpcc => "hpcc",
            CcAlgo::Swift => "swift",
            CcAlgo::Dcqcn => "dcqcn",
            CcAlgo::Fixed => "fixed",
        }
    }
}

/// Parameter bundle for every algorithm, so hosts can carry one struct
/// and build whichever controller their [`CcAlgo`] selects.
#[derive(Debug, Clone, Copy, Default)]
pub struct CcConfig {
    /// Selected algorithm.
    pub algo: CcAlgo,
    /// HPCC parameters (used when `algo == Hpcc`).
    pub hpcc: HpccConfig,
    /// Swift parameters (used when `algo == Swift`).
    pub swift: SwiftConfig,
    /// DCQCN parameters (used when `algo == Dcqcn`).
    pub dcqcn: DcqcnConfig,
    /// Fixed-window parameters (used when `algo == Fixed`).
    pub fixed: FixedConfig,
}

/// Enum dispatch over the four controllers — no `Box<dyn>` on the
/// per-ACK hot path, and the per-path state stays `Copy`-free but
/// movable and `Debug`.
#[derive(Debug)]
pub enum AnyCc {
    /// INT-driven HPCC.
    Hpcc(Hpcc),
    /// Delay-based Swift.
    Swift(Swift),
    /// ECN-driven DCQCN.
    Dcqcn(Dcqcn),
    /// Constant window.
    Fixed(Fixed),
}

impl AnyCc {
    /// Build the controller `cfg.algo` selects.
    pub fn new(cfg: &CcConfig) -> Self {
        match cfg.algo {
            CcAlgo::Hpcc => AnyCc::Hpcc(Hpcc::new(cfg.hpcc)),
            CcAlgo::Swift => AnyCc::Swift(Swift::new(cfg.swift)),
            CcAlgo::Dcqcn => AnyCc::Dcqcn(Dcqcn::new(cfg.dcqcn)),
            CcAlgo::Fixed => AnyCc::Fixed(Fixed::new(cfg.fixed)),
        }
    }

    /// The inner HPCC controller, when that is the selected algorithm
    /// (diagnostics: SOLAR exposes per-path INT utilization).
    pub fn as_hpcc(&self) -> Option<&Hpcc> {
        match self {
            AnyCc::Hpcc(h) => Some(h),
            _ => None,
        }
    }
}

impl CongestionControl for AnyCc {
    fn on_ack(&mut self, now: SimTime, sig: &AckSignal<'_>) {
        match self {
            AnyCc::Hpcc(c) => c.on_ack(now, sig),
            AnyCc::Swift(c) => c.on_ack(now, sig),
            AnyCc::Dcqcn(c) => c.on_ack(now, sig),
            AnyCc::Fixed(c) => c.on_ack(now, sig),
        }
    }

    fn on_timeout(&mut self) {
        match self {
            AnyCc::Hpcc(c) => c.on_timeout(),
            AnyCc::Swift(c) => c.on_timeout(),
            AnyCc::Dcqcn(c) => c.on_timeout(),
            AnyCc::Fixed(c) => c.on_timeout(),
        }
    }

    fn window(&self) -> f64 {
        match self {
            AnyCc::Hpcc(c) => c.window(),
            AnyCc::Swift(c) => c.window(),
            AnyCc::Dcqcn(c) => c.window(),
            AnyCc::Fixed(c) => c.window(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnyCc::Hpcc(_) => "hpcc",
            AnyCc::Swift(_) => "swift",
            AnyCc::Dcqcn(_) => "dcqcn",
            AnyCc::Fixed(_) => "fixed",
        }
    }
}
