//! DCQCN-style ECN-driven congestion control.
//!
//! DCQCN (SIGCOMM '15) is the de-facto controller for RoCE deployments —
//! the RDMA baseline the paper's Luna/Solar stacks are measured against.
//! Switches RED-mark packets as queues build; the receiver echoes the
//! mark; the sender keeps an EWMA `α` of the marked fraction and cuts
//! multiplicatively by `α/2` (at most once per rate-reduction period),
//! then recovers in DCQCN's two-phase stage machine: *fast recovery*
//! binary-searches back toward the pre-cut target, *additive increase*
//! then probes past it.
//!
//! This port is window-based (windows are this crate's common currency)
//! rather than rate-based; the α bookkeeping and the stage machine match
//! the paper's structure.

use ebs_sim::{Bandwidth, SimDuration, SimTime};

use crate::{AckSignal, CongestionControl};

/// DCQCN-style parameters (per flow / QP).
#[derive(Debug, Clone, Copy)]
pub struct DcqcnConfig {
    /// EWMA gain `g` for the marked-fraction estimate α.
    pub g: f64,
    /// Minimum interval between multiplicative cuts (DCQCN's rate-
    /// reduction timer; marks inside the interval only update α).
    pub reduction_period: SimDuration,
    /// Interval between recovery steps while unmarked.
    pub increase_period: SimDuration,
    /// Recovery steps spent in fast recovery (binary search toward the
    /// pre-cut target) before additive increase kicks in.
    pub fast_recovery_stages: u32,
    /// Additive increase per step once past fast recovery, in bytes.
    pub ai_bytes: f64,
    /// Line rate (with `base_rtt` gives the BDP and the window cap).
    pub line_rate: Bandwidth,
    /// Base (unloaded) RTT.
    pub base_rtt: SimDuration,
    /// Lower bound on the window (bytes).
    pub min_window: f64,
}

impl Default for DcqcnConfig {
    fn default() -> Self {
        DcqcnConfig {
            g: 1.0 / 16.0,
            // DCQCN's RP timer is 55us; round to the sim's RTT scale.
            reduction_period: SimDuration::from_micros(50),
            increase_period: SimDuration::from_micros(50),
            fast_recovery_stages: 5,
            ai_bytes: 4096.0,
            line_rate: Bandwidth::from_gbps(25),
            base_rtt: SimDuration::from_micros(20),
            min_window: 2.0 * 4096.0,
        }
    }
}

impl DcqcnConfig {
    /// The bandwidth-delay product: initial window.
    pub fn bdp_bytes(&self) -> f64 {
        self.line_rate.bytes_per_sec() * self.base_rtt.as_secs_f64()
    }
}

/// Per-flow DCQCN state.
#[derive(Debug)]
pub struct Dcqcn {
    cfg: DcqcnConfig,
    /// Current window, bytes.
    window: f64,
    /// Recovery target: the window held when the last cut was taken.
    target: f64,
    /// EWMA of the marked fraction.
    alpha: f64,
    /// Recovery steps taken since the last cut.
    stage: u32,
    /// Last multiplicative cut.
    last_cut: SimTime,
    /// Last recovery step.
    last_increase: SimTime,
}

impl Dcqcn {
    /// A fresh controller starting at the BDP with α = 1 (DCQCN starts
    /// conservative: the first mark cuts hard, then α decays).
    pub fn new(cfg: DcqcnConfig) -> Self {
        let bdp = cfg.bdp_bytes();
        Dcqcn {
            cfg,
            window: bdp,
            target: bdp,
            alpha: 1.0,
            stage: 0,
            last_cut: SimTime::ZERO,
            last_increase: SimTime::ZERO,
        }
    }

    /// Current window in bytes.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// Current marked-fraction estimate α (diagnostics / tests).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Feed one ACK's echoed ECN bit.
    pub fn on_ecn_ack(&mut self, now: SimTime, marked: bool) {
        let w_max = 4.0 * self.cfg.bdp_bytes();
        if marked {
            // α tracks the marked fraction: move toward 1.
            self.alpha = (1.0 - self.cfg.g) * self.alpha + self.cfg.g;
            // Cut at most once per reduction period; marks within the
            // period describe the same queue excursion.
            if now.saturating_since(self.last_cut) >= self.cfg.reduction_period {
                self.target = self.window;
                self.window =
                    (self.window * (1.0 - self.alpha / 2.0)).clamp(self.cfg.min_window, w_max);
                self.stage = 0;
                self.last_cut = now;
                self.last_increase = now;
            }
        } else {
            // α decays toward 0 on unmarked feedback.
            self.alpha *= 1.0 - self.cfg.g;
            if now.saturating_since(self.last_increase) >= self.cfg.increase_period {
                self.stage += 1;
                if self.stage > self.cfg.fast_recovery_stages {
                    // Additive increase: probe past the pre-cut target.
                    self.target += self.cfg.ai_bytes;
                }
                // Both phases step halfway toward the target (DCQCN's
                // rate update R = (R + Rt) / 2).
                self.window = ((self.window + self.target) / 2.0).clamp(self.cfg.min_window, w_max);
                self.last_increase = now;
            }
        }
    }

    /// Timeout: halve toward the floor, same posture as HPCC.
    pub fn on_timeout(&mut self) {
        self.window = (self.window / 2.0).max(self.cfg.min_window);
        self.target = self.window;
        self.stage = 0;
    }
}

impl CongestionControl for Dcqcn {
    /// DCQCN consumes only the echoed ECN bit; every ACK carries one
    /// (absent a mark it is congestion-free feedback that decays α and
    /// drives recovery).
    fn on_ack(&mut self, now: SimTime, sig: &AckSignal<'_>) {
        self.on_ecn_ack(now, sig.ecn);
    }

    fn on_timeout(&mut self) {
        Dcqcn::on_timeout(self);
    }

    fn window(&self) -> f64 {
        Dcqcn::window(self)
    }

    fn name(&self) -> &'static str {
        "dcqcn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_bdp() {
        let cfg = DcqcnConfig::default();
        let d = Dcqcn::new(cfg);
        assert!((d.window() - cfg.bdp_bytes()).abs() < 1.0);
    }

    #[test]
    fn first_mark_cuts_half() {
        // Hand-computed: α starts at 1; the first mark (one reduction
        // period past t=0) first updates α = (1-1/16)·1 + 1/16 = 1, then
        // cuts by α/2: 62_500 · 0.5 = 31_250.
        let mut d = Dcqcn::new(DcqcnConfig::default());
        d.on_ecn_ack(SimTime::from_micros(50), true);
        assert!((d.window() - 31_250.0).abs() < 1e-6, "{}", d.window());
    }

    #[test]
    fn alpha_decays_without_marks() {
        // Hand-computed: α = 1 → ·(15/16) per clean ACK.
        let mut d = Dcqcn::new(DcqcnConfig::default());
        d.on_ecn_ack(SimTime::from_micros(1), false);
        assert!((d.alpha() - 15.0 / 16.0).abs() < 1e-12);
        d.on_ecn_ack(SimTime::from_micros(2), false);
        assert!((d.alpha() - 225.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn decayed_alpha_cuts_shallower() {
        let mut d = Dcqcn::new(DcqcnConfig::default());
        // Decay α with a stretch of clean feedback (spaced past the
        // increase period so recovery also runs — irrelevant here, the
        // cut fraction is what's under test).
        for i in 0..64u64 {
            d.on_ecn_ack(SimTime::from_micros(i + 1), false);
        }
        let alpha = d.alpha();
        assert!(alpha < 0.02);
        let w0 = d.window();
        d.on_ecn_ack(SimTime::from_micros(1000), true);
        let expected_alpha = (1.0 - 1.0 / 16.0) * alpha + 1.0 / 16.0;
        let expected = w0 * (1.0 - expected_alpha / 2.0);
        assert!((d.window() - expected).abs() < 1e-6);
    }

    #[test]
    fn fast_recovery_halves_back_to_target() {
        // Cut to 31_250 with target 62_500, then recover: each step goes
        // halfway back — 46_875, 54_687.5, 58_593.75...
        let mut d = Dcqcn::new(DcqcnConfig::default());
        d.on_ecn_ack(SimTime::from_micros(50), true);
        d.on_ecn_ack(SimTime::from_micros(100), false);
        assert!((d.window() - 46_875.0).abs() < 1e-6, "{}", d.window());
        d.on_ecn_ack(SimTime::from_micros(150), false);
        assert!((d.window() - 54_687.5).abs() < 1e-6, "{}", d.window());
    }

    #[test]
    fn additive_increase_probes_past_target() {
        let mut d = Dcqcn::new(DcqcnConfig::default());
        d.on_ecn_ack(SimTime::from_micros(50), true);
        // Run recovery well past the fast-recovery stages.
        for i in 0..32u64 {
            d.on_ecn_ack(SimTime::from_micros(100 + 50 * i), false);
        }
        assert!(d.window() > 62_500.0, "{}", d.window());
    }

    #[test]
    fn marks_inside_reduction_period_update_alpha_only() {
        let mut d = Dcqcn::new(DcqcnConfig::default());
        d.on_ecn_ack(SimTime::from_micros(50), true);
        let w1 = d.window();
        // 10us later: inside the 50us reduction period.
        d.on_ecn_ack(SimTime::from_micros(60), true);
        assert_eq!(d.window(), w1);
        assert!((d.alpha() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn window_never_below_floor() {
        let cfg = DcqcnConfig::default();
        let mut d = Dcqcn::new(cfg);
        for i in 0..128u64 {
            d.on_ecn_ack(SimTime::from_micros(50 * (i + 1)), true);
        }
        assert!(d.window() >= cfg.min_window);
        for _ in 0..32 {
            d.on_timeout();
        }
        assert!(d.window() >= cfg.min_window);
    }
}
