//! Swift-style delay-based congestion control.
//!
//! Swift (SIGCOMM '20) drives the window from the one signal every
//! transport already has — the RTT sample — against a fixed target
//! delay: additive increase while measured delay is under target,
//! multiplicative decrease proportional to the overshoot when it is
//! over, with the decrease rate-limited to once per RTT so one
//! congested round trip does not compound into collapse. No switch
//! support (INT, ECN) is needed, which is exactly why it is the
//! interesting comparison point for SOLAR's INT-driven HPCC: it shows
//! what the fabric telemetry buys.

use ebs_sim::{Bandwidth, SimDuration, SimTime};

use crate::{AckSignal, CongestionControl};

/// Swift-style delay-target parameters (per path / flow).
#[derive(Debug, Clone, Copy)]
pub struct SwiftConfig {
    /// End-to-end delay target; at or under it the window grows.
    pub target_delay: SimDuration,
    /// Additive increase per under-target ACK, in bytes.
    pub ai_bytes: f64,
    /// Multiplicative-decrease gain β: the cut is
    /// `1 - β·(delay − target)/delay`, floored by `max_mdf`.
    pub beta: f64,
    /// Maximum multiplicative decrease factor per cut (Swift's
    /// `max_mdf`): the window never loses more than this fraction in
    /// one decision.
    pub max_mdf: f64,
    /// Line rate (with `base_rtt` gives the BDP and the window cap).
    pub line_rate: Bandwidth,
    /// Base (unloaded) RTT; also the decrease rate-limit interval.
    pub base_rtt: SimDuration,
    /// Lower bound on the window (bytes).
    pub min_window: f64,
}

impl Default for SwiftConfig {
    fn default() -> Self {
        SwiftConfig {
            // base_rtt (20us) plus a ~2.5 MTU queueing budget at 25G.
            target_delay: SimDuration::from_micros(25),
            ai_bytes: 4096.0,
            beta: 0.8,
            max_mdf: 0.5,
            line_rate: Bandwidth::from_gbps(25),
            base_rtt: SimDuration::from_micros(20),
            min_window: 2.0 * 4096.0,
        }
    }
}

impl SwiftConfig {
    /// The bandwidth-delay product: initial window.
    pub fn bdp_bytes(&self) -> f64 {
        self.line_rate.bytes_per_sec() * self.base_rtt.as_secs_f64()
    }
}

/// Per-path Swift state.
#[derive(Debug)]
pub struct Swift {
    cfg: SwiftConfig,
    /// Current window, bytes.
    window: f64,
    /// Last multiplicative decrease (rate-limits cuts to one per RTT).
    last_decrease: SimTime,
    /// Most recent delay sample in ns (diagnostic).
    last_delay_ns: u64,
}

impl Swift {
    /// A fresh controller starting at the BDP.
    pub fn new(cfg: SwiftConfig) -> Self {
        Swift {
            window: cfg.bdp_bytes(),
            cfg,
            last_decrease: SimTime::ZERO,
            last_delay_ns: 0,
        }
    }

    /// Current window in bytes.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// Most recent delay sample, nanoseconds (diagnostics / tests).
    pub fn last_delay_ns(&self) -> u64 {
        self.last_delay_ns
    }

    /// Feed one RTT sample.
    pub fn on_delay_sample(&mut self, now: SimTime, rtt: SimDuration) {
        self.last_delay_ns = rtt.as_nanos();
        let w_max = 4.0 * self.cfg.bdp_bytes();
        let target_ns = self.cfg.target_delay.as_nanos() as f64;
        let delay_ns = rtt.as_nanos() as f64;
        if delay_ns <= target_ns {
            self.window = (self.window + self.cfg.ai_bytes).clamp(self.cfg.min_window, w_max);
        } else if now.saturating_since(self.last_decrease) >= self.cfg.base_rtt {
            // Cut proportionally to the overshoot, bounded by max_mdf,
            // at most once per RTT (everything inflight when congestion
            // built shares the same stale delay).
            let cut = 1.0 - self.cfg.beta * (delay_ns - target_ns) / delay_ns;
            let factor = cut.max(1.0 - self.cfg.max_mdf);
            self.window = (self.window * factor).clamp(self.cfg.min_window, w_max);
            self.last_decrease = now;
        }
    }

    /// Timeout: halve toward the floor, same posture as HPCC.
    pub fn on_timeout(&mut self) {
        self.window = (self.window / 2.0).max(self.cfg.min_window);
    }
}

impl CongestionControl for Swift {
    /// Swift consumes only the RTT sample; ACKs without one (Karn-
    /// filtered retransmissions) leave the window untouched.
    fn on_ack(&mut self, now: SimTime, sig: &AckSignal<'_>) {
        if let Some(rtt) = sig.rtt_sample {
            self.on_delay_sample(now, rtt);
        }
    }

    fn on_timeout(&mut self) {
        Swift::on_timeout(self);
    }

    fn window(&self) -> f64 {
        Swift::window(self)
    }

    fn name(&self) -> &'static str {
        "swift"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_bdp() {
        let cfg = SwiftConfig::default();
        let s = Swift::new(cfg);
        assert!((s.window() - cfg.bdp_bytes()).abs() < 1.0);
    }

    #[test]
    fn under_target_grows_additively() {
        // Hand-computed: BDP = 25e9/8 * 20e-6 = 62_500 bytes. Two
        // under-target samples add 4096 each: 62_500 → 66_596 → 70_692.
        let mut s = Swift::new(SwiftConfig::default());
        s.on_delay_sample(SimTime::from_micros(20), SimDuration::from_micros(20));
        assert!((s.window() - 66_596.0).abs() < 1e-6);
        s.on_delay_sample(SimTime::from_micros(40), SimDuration::from_micros(22));
        assert!((s.window() - 70_692.0).abs() < 1e-6);
    }

    #[test]
    fn over_target_cuts_proportionally() {
        // Hand-computed: delay 50us vs target 25us → overshoot fraction
        // (50-25)/50 = 0.5, cut factor 1 - 0.8*0.5 = 0.6.
        // 62_500 * 0.6 = 37_500.
        let mut s = Swift::new(SwiftConfig::default());
        s.on_delay_sample(SimTime::from_micros(100), SimDuration::from_micros(50));
        assert!((s.window() - 37_500.0).abs() < 1e-6, "{}", s.window());
    }

    #[test]
    fn cut_is_bounded_by_max_mdf() {
        // Hand-computed: delay 1000us → overshoot (1000-25)/1000 = 0.975,
        // raw factor 1 - 0.8*0.975 = 0.22, floored at 1 - max_mdf = 0.5.
        // 62_500 * 0.5 = 31_250.
        let mut s = Swift::new(SwiftConfig::default());
        s.on_delay_sample(SimTime::from_micros(100), SimDuration::from_micros(1000));
        assert!((s.window() - 31_250.0).abs() < 1e-6, "{}", s.window());
    }

    #[test]
    fn decrease_rate_limited_to_one_per_rtt() {
        let mut s = Swift::new(SwiftConfig::default());
        s.on_delay_sample(SimTime::from_micros(100), SimDuration::from_micros(50));
        let w1 = s.window();
        // 5us later (< base_rtt of 20us): the second over-target sample
        // must not cut again.
        s.on_delay_sample(SimTime::from_micros(105), SimDuration::from_micros(60));
        assert_eq!(s.window(), w1);
        // A full RTT later it may.
        s.on_delay_sample(SimTime::from_micros(125), SimDuration::from_micros(60));
        assert!(s.window() < w1);
    }

    #[test]
    fn window_never_below_floor() {
        let cfg = SwiftConfig::default();
        let mut s = Swift::new(cfg);
        for i in 0..128u64 {
            s.on_delay_sample(
                SimTime::from_micros(100 * (i + 1)),
                SimDuration::from_millis(10),
            );
        }
        assert!((s.window() - cfg.min_window).abs() < 1e-9);
        for _ in 0..32 {
            s.on_timeout();
        }
        assert!(s.window() >= cfg.min_window);
    }

    #[test]
    fn growth_capped_at_four_bdp() {
        let cfg = SwiftConfig::default();
        let mut s = Swift::new(cfg);
        for i in 0..1024u64 {
            s.on_delay_sample(
                SimTime::from_micros(20 * (i + 1)),
                SimDuration::from_micros(10),
            );
        }
        assert!(s.window() <= 4.0 * cfg.bdp_bytes() + 1e-9);
    }
}
