//! The null controller: a constant window.
//!
//! Preserves the pre-trait behavior of hosts that ran without
//! congestion control — SOLAR with `int_enabled = false` (window parked
//! at the BDP) and the RDMA baseline's static `window_pkts` — and
//! doubles as the control arm of the CC comparison matrix.

use crate::{AckSignal, CongestionControl};
use ebs_sim::SimTime;

/// Fixed-window parameters.
#[derive(Debug, Clone, Copy)]
pub struct FixedConfig {
    /// The constant window, bytes.
    pub window_bytes: f64,
}

impl Default for FixedConfig {
    fn default() -> Self {
        FixedConfig {
            // SOLAR's per-path BDP at 25G × 20us.
            window_bytes: 62_500.0,
        }
    }
}

/// A window that never moves.
#[derive(Debug)]
pub struct Fixed {
    window: f64,
}

impl Fixed {
    /// A controller pinned at `cfg.window_bytes`.
    pub fn new(cfg: FixedConfig) -> Self {
        Fixed {
            window: cfg.window_bytes,
        }
    }

    /// Current window in bytes (constant).
    pub fn window(&self) -> f64 {
        self.window
    }

    /// Timeouts do not move a fixed window.
    pub fn on_timeout(&mut self) {}
}

impl CongestionControl for Fixed {
    fn on_ack(&mut self, _now: SimTime, _sig: &AckSignal<'_>) {}

    fn on_timeout(&mut self) {}

    fn window(&self) -> f64 {
        self.window
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_is_constant() {
        let mut f = Fixed::new(FixedConfig {
            window_bytes: 1234.0,
        });
        f.on_timeout();
        CongestionControl::on_ack(
            &mut f,
            SimTime::from_micros(1),
            &AckSignal {
                rtt_sample: None,
                int: None,
                ecn: true,
            },
        );
        assert_eq!(f.window(), 1234.0);
    }
}
