//! HPCC-style INT-driven congestion control.
//!
//! SOLAR pairs its per-packet ACKs with fine-grained congestion control
//! (§4.8 cites HPCC [38]): every ACK echoes the INT stack the data packet
//! collected, the sender computes the most-utilized hop's normalized
//! utilization `U = qlen/(B·T) + txRate/B`, and the window follows HPCC's
//! update rule — multiplicative adjustment toward `η` when over-utilized,
//! bounded additive increase otherwise, against a per-RTT reference
//! window `Wc`.
//!
//! Ported verbatim from `ebs-solar` behind the [`CongestionControl`]
//! trait; the float operations are unchanged so windows replay
//! bit-identically across the move.

use ebs_sim::FxHashMap;

use ebs_sim::{Bandwidth, SimDuration, SimTime};
use ebs_wire::IntStack;

use crate::{AckSignal, CongestionControl};

/// HPCC-style congestion control parameters (per path).
#[derive(Debug, Clone, Copy)]
pub struct HpccConfig {
    /// Target utilization η (HPCC uses 0.95).
    pub eta: f64,
    /// Additive increase per ACK, in bytes (W_ai).
    pub wai_bytes: f64,
    /// Maximum additive-increase stages before a multiplicative update is
    /// forced (HPCC's maxStage).
    pub max_stage: u32,
    /// Line rate of the bottleneck-free path (sets the initial window).
    pub line_rate: Bandwidth,
    /// Base (unloaded) RTT; with `line_rate` gives the BDP.
    pub base_rtt: SimDuration,
    /// Lower bound on the window so a path can always probe (bytes).
    pub min_window: f64,
}

impl Default for HpccConfig {
    fn default() -> Self {
        HpccConfig {
            eta: 0.95,
            wai_bytes: 4096.0,
            max_stage: 5,
            // Per-path share of a 2x25GE NIC spraying over 4 paths: the
            // *initial* window is one path's fair share of the NIC; HPCC
            // grows it when INT shows headroom.
            line_rate: Bandwidth::from_gbps(25),
            base_rtt: SimDuration::from_micros(20),
            min_window: 2.0 * 4096.0,
        }
    }
}

impl HpccConfig {
    /// The bandwidth-delay product: initial and reference maximum window.
    pub fn bdp_bytes(&self) -> f64 {
        self.line_rate.bytes_per_sec() * self.base_rtt.as_secs_f64()
    }
}

/// Previous INT observation of one hop (to difference the tx counter).
#[derive(Debug, Clone, Copy)]
struct HopSnapshot {
    tx_bytes: u64,
    ts_ns: u64,
}

/// Per-path HPCC state.
#[derive(Debug)]
pub struct Hpcc {
    cfg: HpccConfig,
    /// Current window, bytes.
    window: f64,
    /// Reference window updated once per RTT.
    wc: f64,
    inc_stage: u32,
    last_wc_update: SimTime,
    prev_hops: FxHashMap<u32, HopSnapshot>,
    /// Most recent computed max-hop utilization (diagnostic).
    last_u: f64,
}

impl Hpcc {
    /// A fresh controller starting at the BDP.
    pub fn new(cfg: HpccConfig) -> Self {
        let bdp = cfg.bdp_bytes();
        Hpcc {
            cfg,
            window: bdp,
            wc: bdp,
            inc_stage: 0,
            last_wc_update: SimTime::ZERO,
            prev_hops: FxHashMap::default(),
            last_u: 0.0,
        }
    }

    /// Current window in bytes.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// Last computed utilization (diagnostics / tests).
    pub fn last_utilization(&self) -> f64 {
        self.last_u
    }

    /// Process the INT stack echoed by an ACK.
    pub fn on_int_ack(&mut self, now: SimTime, int: &IntStack) {
        let Some(u) = self.max_hop_utilization(int) else {
            return; // first sample of every hop: no rate yet
        };
        self.last_u = u;
        let eta = self.cfg.eta;
        // The window may grow past the per-path starting BDP when INT
        // shows headroom (paths share the NIC unevenly), but is bounded
        // to keep a sick path from absorbing unbounded inflight.
        let w_max = 4.0 * self.cfg.bdp_bytes();
        if u >= eta || self.inc_stage >= self.cfg.max_stage {
            // Multiplicative move toward target utilization.
            self.window =
                (self.wc / (u / eta) + self.cfg.wai_bytes).clamp(self.cfg.min_window, w_max);
            self.inc_stage = 0;
            self.wc = self.window;
            self.last_wc_update = now;
        } else {
            self.window = (self.wc + self.cfg.wai_bytes).clamp(self.cfg.min_window, w_max);
            self.inc_stage += 1;
            // Update the reference once per base RTT.
            if now.saturating_since(self.last_wc_update) >= self.cfg.base_rtt {
                self.wc = self.window;
                self.inc_stage = 0;
                self.last_wc_update = now;
            }
        }
    }

    /// A timeout is a strong congestion / failure signal: halve toward the
    /// floor so retransmissions do not pile onto a sick path.
    pub fn on_timeout(&mut self) {
        self.window = (self.window / 2.0).max(self.cfg.min_window);
        self.wc = self.window;
        self.inc_stage = 0;
    }

    fn max_hop_utilization(&mut self, int: &IntStack) -> Option<f64> {
        let t_ns = self.cfg.base_rtt.as_nanos() as f64;
        let mut max_u: Option<f64> = None;
        for hop in &int.hops {
            let b_bytes_per_ns = hop.link_mbps as f64 * 1e6 / 8.0 / 1e9;
            let prev = self.prev_hops.insert(
                hop.device_id,
                HopSnapshot {
                    tx_bytes: hop.tx_bytes,
                    ts_ns: hop.ts_ns,
                },
            );
            let Some(prev) = prev else { continue };
            if hop.ts_ns <= prev.ts_ns {
                continue; // reordered INT sample
            }
            let dt = (hop.ts_ns - prev.ts_ns) as f64;
            let tx_rate = (hop.tx_bytes.saturating_sub(prev.tx_bytes)) as f64 / dt;
            let u = hop.queue_bytes as f64 / (b_bytes_per_ns * t_ns) + tx_rate / b_bytes_per_ns;
            max_u = Some(max_u.map_or(u, |m: f64| m.max(u)));
        }
        max_u
    }
}

impl CongestionControl for Hpcc {
    /// HPCC only reacts to ACKs that carry INT; bare ACKs leave the
    /// window untouched (matching the pre-trait SOLAR behavior when
    /// `int_enabled` is off).
    fn on_ack(&mut self, now: SimTime, sig: &AckSignal<'_>) {
        if let Some(int) = sig.int {
            self.on_int_ack(now, int);
        }
    }

    fn on_timeout(&mut self) {
        Hpcc::on_timeout(self);
    }

    fn window(&self) -> f64 {
        Hpcc::window(self)
    }

    fn name(&self) -> &'static str {
        "hpcc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_wire::IntHop;

    fn hop(dev: u32, queue: u32, tx: u64, ts: u64) -> IntHop {
        IntHop {
            device_id: dev,
            queue_bytes: queue,
            tx_bytes: tx,
            ts_ns: ts,
            link_mbps: 25_000, // 25G
        }
    }

    fn stack(hops: Vec<IntHop>) -> IntStack {
        IntStack { hops }
    }

    #[test]
    fn starts_at_bdp() {
        let cfg = HpccConfig::default();
        let h = Hpcc::new(cfg);
        assert!((h.window() - cfg.bdp_bytes()).abs() < 1.0);
    }

    #[test]
    fn idle_link_grows_additively() {
        let mut h = Hpcc::new(HpccConfig::default());
        // Drain below BDP first so growth is visible.
        h.on_timeout();
        let w0 = h.window();
        // Empty queue, negligible tx rate.
        h.on_int_ack(SimTime::from_micros(10), &stack(vec![hop(1, 0, 0, 10_000)]));
        h.on_int_ack(
            SimTime::from_micros(25),
            &stack(vec![hop(1, 0, 100, 25_000)]),
        );
        assert!(h.window() > w0, "{} !> {}", h.window(), w0);
    }

    #[test]
    fn congested_link_shrinks() {
        let mut h = Hpcc::new(HpccConfig::default());
        let w0 = h.window();
        // Deep queue and line-rate tx: U >> eta.
        // 25G = 3.125 bytes/ns: in 10_000 ns, 31_250 bytes at line rate.
        h.on_int_ack(
            SimTime::from_micros(10),
            &stack(vec![hop(1, 200_000, 0, 10_000)]),
        );
        h.on_int_ack(
            SimTime::from_micros(25),
            &stack(vec![hop(1, 200_000, 46_875, 25_000)]),
        );
        assert!(h.window() < w0, "{} !< {}", h.window(), w0);
        assert!(h.last_utilization() > 1.0);
    }

    #[test]
    fn bottleneck_is_the_max_hop() {
        let mut h = Hpcc::new(HpccConfig::default());
        h.on_int_ack(
            SimTime::from_micros(10),
            &stack(vec![hop(1, 0, 0, 10_000), hop(2, 500_000, 0, 10_000)]),
        );
        h.on_int_ack(
            SimTime::from_micros(25),
            &stack(vec![
                hop(1, 0, 100, 25_000),
                hop(2, 500_000, 46_875, 25_000),
            ]),
        );
        assert!(h.last_utilization() > 1.0, "congested hop 2 must dominate");
    }

    #[test]
    fn timeout_halves() {
        let mut h = Hpcc::new(HpccConfig::default());
        let w0 = h.window();
        h.on_timeout();
        assert!((h.window() - w0 / 2.0).abs() < 1.0);
    }

    #[test]
    fn window_never_below_floor() {
        let cfg = HpccConfig::default();
        let mut h = Hpcc::new(cfg);
        for _ in 0..64 {
            h.on_timeout();
        }
        assert!(h.window() >= cfg.min_window);
    }

    #[test]
    fn trait_ack_routes_int() {
        let mut h = Hpcc::new(HpccConfig::default());
        let w0 = h.window();
        // A bare ACK (no INT) must not move the window.
        CongestionControl::on_ack(
            &mut h,
            SimTime::from_micros(10),
            &AckSignal {
                rtt_sample: Some(SimDuration::from_micros(20)),
                int: None,
                ecn: true,
            },
        );
        assert_eq!(h.window(), w0);
        // The same congested INT trace as `congested_link_shrinks`, fed
        // through the trait, must shrink it.
        let s1 = stack(vec![hop(1, 200_000, 0, 10_000)]);
        let s2 = stack(vec![hop(1, 200_000, 46_875, 25_000)]);
        CongestionControl::on_ack(
            &mut h,
            SimTime::from_micros(10),
            &AckSignal {
                rtt_sample: None,
                int: Some(&s1),
                ecn: false,
            },
        );
        CongestionControl::on_ack(
            &mut h,
            SimTime::from_micros(25),
            &AckSignal {
                rtt_sample: None,
                int: Some(&s2),
                ecn: false,
            },
        );
        assert!(h.window() < w0);
    }
}
