//! Property tests: under arbitrary ACK/timeout histories, every
//! controller's window stays inside [min_window, 4·BDP] (the fixed
//! controller: exactly at its configured constant).

use ebs_cc::{AckSignal, AnyCc, CcAlgo, CcConfig, CongestionControl};
use ebs_sim::{SimDuration, SimTime};
use ebs_wire::{IntHop, IntStack};
use proptest::prelude::*;

/// One generated step: `(kind, dt_us, rtt_us, has_rtt, ecn, hops)`.
/// `kind == 0` is a timeout (1-in-10 weight); anything else is an ACK
/// carrying whichever signals the flags enable.
type RawStep = (u8, u64, u64, bool, bool, Vec<(u32, u64)>);

fn drive(cc: &mut AnyCc, steps: &[RawStep]) -> Vec<f64> {
    let mut now_us = 0u64;
    let mut windows = Vec::with_capacity(steps.len());
    for (kind, dt_us, rtt_us, has_rtt, ecn, hops) in steps {
        if *kind == 0 {
            cc.on_timeout();
        } else {
            now_us += dt_us;
            let int = IntStack {
                hops: hops
                    .iter()
                    .enumerate()
                    .map(|(i, &(queue_bytes, tx_bytes))| IntHop {
                        device_id: i as u32,
                        queue_bytes,
                        tx_bytes,
                        ts_ns: now_us * 1000,
                        link_mbps: 25_000,
                    })
                    .collect(),
            };
            let sig = AckSignal {
                rtt_sample: has_rtt.then(|| SimDuration::from_micros(*rtt_us)),
                int: (!int.hops.is_empty()).then_some(&int),
                ecn: *ecn,
            };
            cc.on_ack(SimTime::from_micros(now_us), &sig);
        }
        windows.push(cc.window());
    }
    windows
}

fn steps_strategy() -> impl Strategy<Value = Vec<RawStep>> {
    proptest::collection::vec(
        (
            0u8..10,
            0u64..200,
            1u64..5_000,
            any::<bool>(),
            any::<bool>(),
            proptest::collection::vec((0u32..10_000_000, 0u64..(1 << 40)), 0..4),
        ),
        1..200,
    )
}

proptest! {
    #[test]
    fn adaptive_windows_stay_bounded(
        steps in steps_strategy(),
        algo in proptest::sample::select(vec![CcAlgo::Hpcc, CcAlgo::Swift, CcAlgo::Dcqcn]),
    ) {
        let cfg = CcConfig { algo, ..CcConfig::default() };
        // All three adaptive controllers share the default 25G × 20us
        // envelope: floor 8 KiB, cap 4 × BDP = 250_000 bytes.
        let (floor, cap) = match algo {
            CcAlgo::Hpcc => (cfg.hpcc.min_window, 4.0 * cfg.hpcc.bdp_bytes()),
            CcAlgo::Swift => (cfg.swift.min_window, 4.0 * cfg.swift.bdp_bytes()),
            CcAlgo::Dcqcn => (cfg.dcqcn.min_window, 4.0 * cfg.dcqcn.bdp_bytes()),
            CcAlgo::Fixed => unreachable!(),
        };
        let mut cc = AnyCc::new(&cfg);
        for w in drive(&mut cc, &steps) {
            prop_assert!(w >= floor - 1e-9, "window {} under floor {}", w, floor);
            prop_assert!(w <= cap + 1e-9, "window {} over cap {}", w, cap);
            prop_assert!(w.is_finite());
        }
    }

    #[test]
    fn fixed_window_never_moves(steps in steps_strategy()) {
        let cfg = CcConfig { algo: CcAlgo::Fixed, ..CcConfig::default() };
        let pinned = cfg.fixed.window_bytes;
        let mut cc = AnyCc::new(&cfg);
        for w in drive(&mut cc, &steps) {
            prop_assert_eq!(w, pinned);
        }
    }
}
