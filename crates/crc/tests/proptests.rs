//! Property tests for the CRC invariants SOLAR's integrity design rests on,
//! plus the differential suite pinning every dispatched kernel (slice-by-16
//! portable, SSE4.2 crc32, PCLMULQDQ folding) to the slice-by-8 reference.

use ebs_crc::{
    block_crc_raw, combine, crc32, crc32_raw, Crc32, SegmentChecker, SegmentVerdict,
    POLY_CASTAGNOLI, POLY_IEEE,
};
use proptest::prelude::*;

/// Engines covering both polynomials and both conditionings, so the
/// dispatched kernels (which depend on the polynomial) are all exercised.
fn engines() -> Vec<(&'static str, Crc32)> {
    vec![
        ("ieee", Crc32::ieee()),
        ("ieee_raw", Crc32::ieee_raw()),
        ("castagnoli", Crc32::castagnoli()),
        ("castagnoli_raw", Crc32::with_params(POLY_CASTAGNOLI, 0, 0)),
        (
            "ieee_odd_params",
            Crc32::with_params(POLY_IEEE, 0x1234_5678, 0x0F0F_0F0F),
        ),
    ]
}

proptest! {
    /// Differential: dispatched kernel == slice-by-16 == slice-by-8 for
    /// every engine, over random lengths, contents and starting states.
    #[test]
    fn kernels_match_reference(
        data in proptest::collection::vec(any::<u8>(), 0..4500),
        state in any::<u32>(),
    ) {
        for (name, e) in engines() {
            let want = e.update_slice8(state, &data);
            prop_assert_eq!(e.update(state, &data), want, "dispatch {} ({})", name, e.kernel_name());
            prop_assert_eq!(e.update_slice16(state, &data), want, "slice16 {}", name);
        }
    }

    /// Differential at unaligned starting offsets: hardware kernels must
    /// not care where in an allocation the data begins. Exercises every
    /// alignment 0..16 around the exact 4096-byte fast path.
    #[test]
    fn kernels_match_reference_unaligned(
        seed in any::<u64>(),
        offset in 0usize..16,
        len in prop::sample::select(vec![0usize, 1, 15, 16, 63, 64, 65, 255, 4095, 4096, 4097]),
    ) {
        let backing: Vec<u8> = (0..(offset + len))
            .map(|i| (seed.wrapping_mul(i as u64 + 1) >> 13) as u8)
            .collect();
        let data = &backing[offset..];
        for (name, e) in engines() {
            prop_assert_eq!(
                e.update(0, data),
                e.update_slice8(0, data),
                "{} len={} offset={}", name, len, offset
            );
        }
    }

    /// The checksum (conditioned) path agrees across kernels too, and
    /// incremental dispatch at arbitrary splits equals one-shot.
    #[test]
    fn dispatched_checksum_incremental(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        split in any::<prop::sample::Index>(),
    ) {
        for (name, e) in engines() {
            let k = split.index(data.len() + 1);
            let mut st = e.start();
            st = e.update(st, &data[..k]);
            st = e.update(st, &data[k..]);
            prop_assert_eq!(e.finish(st), e.finish(e.update_slice8(e.start(), &data)),
                "split {}", name);
        }
    }

    /// Aggregation laws hold with hardware kernels live: raw linearity
    /// `CRC(A ⊕ B) = CRC(A) ⊕ CRC(B)` on full 4 KiB blocks (the dispatch
    /// fast path) and `combine` against concatenation.
    #[test]
    fn aggregation_laws_survive_dispatch(seed in any::<u64>()) {
        let a: Vec<u8> = (0..4096u64).map(|i| (seed.wrapping_mul(i + 3) >> 11) as u8).collect();
        let b: Vec<u8> = (0..4096u64).map(|i| (seed.wrapping_mul(i + 7) >> 17) as u8).collect();
        let x: Vec<u8> = a.iter().zip(&b).map(|(p, q)| p ^ q).collect();
        prop_assert_eq!(crc32_raw(&x), crc32_raw(&a) ^ crc32_raw(&b));
        let whole: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(combine(crc32(&a), crc32(&b), b.len() as u64), crc32(&whole));
    }

    /// Raw CRC is linear over XOR for equal-length inputs — the exact
    /// property the paper's divide-and-conquer aggregation exploits.
    #[test]
    fn raw_crc_linear(a in proptest::collection::vec(any::<u8>(), 1..2048)) {
        let b: Vec<u8> = a.iter().map(|x| x.wrapping_add(37)).collect();
        let x: Vec<u8> = a.iter().zip(&b).map(|(p, q)| p ^ q).collect();
        prop_assert_eq!(crc32_raw(&x), crc32_raw(&a) ^ crc32_raw(&b));
    }

    /// CRC combination matches CRC of the concatenation.
    #[test]
    fn combine_matches_concat(
        a in proptest::collection::vec(any::<u8>(), 0..512),
        b in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let whole: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(combine(crc32(&a), crc32(&b), b.len() as u64), crc32(&whole));
    }

    /// A clean segment always verifies, regardless of block contents or
    /// count (including short, zero-padded tail blocks).
    #[test]
    fn clean_segment_verifies(
        blocks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..=128), 1..16),
    ) {
        let mut chk = SegmentChecker::new(128);
        for b in &blocks {
            chk.add_block(b, block_crc_raw(b, 128));
        }
        prop_assert_eq!(chk.verify_and_reset(), SegmentVerdict::Ok);
    }

    /// A single bit flip in any block of a segment is always detected.
    #[test]
    fn single_bit_flip_detected(
        blocks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 128..=128), 1..8),
        victim in any::<prop::sample::Index>(),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut chk = SegmentChecker::new(128);
        let victim = victim.index(blocks.len());
        for (i, b) in blocks.iter().enumerate() {
            let crc = block_crc_raw(b, 128);
            if i == victim {
                let mut bad = b.clone();
                let idx = byte.index(bad.len());
                bad[idx] ^= 1 << bit;
                chk.add_block(&bad, crc);
            } else {
                chk.add_block(b, crc);
            }
        }
        prop_assert_eq!(chk.verify_and_reset(), SegmentVerdict::Corrupt);
    }

    /// A flipped *claimed CRC* is always detected too (bit flips can hit
    /// the CRC registers in the FPGA, not just the payload).
    #[test]
    fn crc_register_flip_detected(
        blocks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 64..=64), 1..8),
        victim in any::<prop::sample::Index>(),
        bit in 0u8..32,
    ) {
        let mut chk = SegmentChecker::new(64);
        let victim = victim.index(blocks.len());
        for (i, b) in blocks.iter().enumerate() {
            let mut crc = block_crc_raw(b, 64);
            if i == victim {
                crc ^= 1 << bit;
            }
            chk.add_block(b, crc);
        }
        prop_assert_eq!(chk.verify_and_reset(), SegmentVerdict::Corrupt);
    }

    /// Incremental and one-shot CRC agree for any split point.
    #[test]
    fn incremental_split(data in proptest::collection::vec(any::<u8>(), 0..1024),
                         split in any::<prop::sample::Index>()) {
        let c = ebs_crc::Crc32::ieee();
        let k = split.index(data.len() + 1);
        let mut st = c.start();
        st = c.update(st, &data[..k]);
        st = c.update(st, &data[k..]);
        prop_assert_eq!(c.finish(st), crc32(&data));
    }
}
