//! Property tests for the CRC invariants SOLAR's integrity design rests on.

use ebs_crc::{block_crc_raw, combine, crc32, crc32_raw, SegmentChecker, SegmentVerdict};
use proptest::prelude::*;

proptest! {
    /// Raw CRC is linear over XOR for equal-length inputs — the exact
    /// property the paper's divide-and-conquer aggregation exploits.
    #[test]
    fn raw_crc_linear(a in proptest::collection::vec(any::<u8>(), 1..2048)) {
        let b: Vec<u8> = a.iter().map(|x| x.wrapping_add(37)).collect();
        let x: Vec<u8> = a.iter().zip(&b).map(|(p, q)| p ^ q).collect();
        prop_assert_eq!(crc32_raw(&x), crc32_raw(&a) ^ crc32_raw(&b));
    }

    /// CRC combination matches CRC of the concatenation.
    #[test]
    fn combine_matches_concat(
        a in proptest::collection::vec(any::<u8>(), 0..512),
        b in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let whole: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(combine(crc32(&a), crc32(&b), b.len() as u64), crc32(&whole));
    }

    /// A clean segment always verifies, regardless of block contents or
    /// count (including short, zero-padded tail blocks).
    #[test]
    fn clean_segment_verifies(
        blocks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..=128), 1..16),
    ) {
        let mut chk = SegmentChecker::new(128);
        for b in &blocks {
            chk.add_block(b, block_crc_raw(b, 128));
        }
        prop_assert_eq!(chk.verify_and_reset(), SegmentVerdict::Ok);
    }

    /// A single bit flip in any block of a segment is always detected.
    #[test]
    fn single_bit_flip_detected(
        blocks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 128..=128), 1..8),
        victim in any::<prop::sample::Index>(),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut chk = SegmentChecker::new(128);
        let victim = victim.index(blocks.len());
        for (i, b) in blocks.iter().enumerate() {
            let crc = block_crc_raw(b, 128);
            if i == victim {
                let mut bad = b.clone();
                let idx = byte.index(bad.len());
                bad[idx] ^= 1 << bit;
                chk.add_block(&bad, crc);
            } else {
                chk.add_block(b, crc);
            }
        }
        prop_assert_eq!(chk.verify_and_reset(), SegmentVerdict::Corrupt);
    }

    /// A flipped *claimed CRC* is always detected too (bit flips can hit
    /// the CRC registers in the FPGA, not just the payload).
    #[test]
    fn crc_register_flip_detected(
        blocks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 64..=64), 1..8),
        victim in any::<prop::sample::Index>(),
        bit in 0u8..32,
    ) {
        let mut chk = SegmentChecker::new(64);
        let victim = victim.index(blocks.len());
        for (i, b) in blocks.iter().enumerate() {
            let mut crc = block_crc_raw(b, 64);
            if i == victim {
                crc ^= 1 << bit;
            }
            chk.add_block(b, crc);
        }
        prop_assert_eq!(chk.verify_and_reset(), SegmentVerdict::Corrupt);
    }

    /// Incremental and one-shot CRC agree for any split point.
    #[test]
    fn incremental_split(data in proptest::collection::vec(any::<u8>(), 0..1024),
                         split in any::<prop::sample::Index>()) {
        let c = ebs_crc::Crc32::ieee();
        let k = split.index(data.len() + 1);
        let mut st = c.start();
        st = c.update(st, &data[..k]);
        st = c.update(st, &data[k..]);
        prop_assert_eq!(c.finish(st), crc32(&data));
    }
}
