//! # ebs-crc — CRC32 engines and SOLAR's segment-level CRC aggregation
//!
//! EBS relies on CRC to catch corruption anywhere on the data path. SOLAR
//! computes per-block CRC32 *inside the FPGA* — which is itself the largest
//! source of corruption (bit flips, §4.4/Fig. 11) — so the paper adds a
//! software cross-check: the CPU verifies an **aggregate** of the per-block
//! CRCs over a segment, exploiting CRC32 linearity
//! `CRC(A ⊕ B) = CRC(A) ⊕ CRC(B)` (for the raw, init=0/xorout=0 variant and
//! equal-length inputs). One XOR accumulation plus a single CRC replaces a
//! per-block software CRC, preserving "nine 9s" integrity at a fraction of
//! the CPU cost.
//!
//! This crate provides:
//! * [`Crc32`] — parameterised, reflected table CRC (IEEE and Castagnoli
//!   polynomials, standard and raw conditioning) with **runtime kernel
//!   dispatch**: portable slice-by-16 everywhere, plus `x86_64` SSE4.2
//!   `crc32` (Castagnoli) and PCLMULQDQ folding (IEEE) selected via
//!   `is_x86_feature_detected!` when the default `hw` feature is on;
//! * [`crc32`] / [`crc32c`] / [`crc32_raw`] — convenience one-shots;
//! * [`combine`] — zlib-style CRC concatenation (GF(2) matrix method);
//! * [`SegmentChecker`] — the software aggregation check of §4.5.
//!
//! ## Unsafe-isolation policy
//!
//! The crate denies `unsafe_code` globally; the **only** exemption is the
//! private `hw` module (gated behind the `hw` feature and
//! `target_arch = "x86_64"`), which wraps the two SIMD kernels. Every
//! `unsafe` entry point asserts CPU-feature detection before calling into
//! a `#[target_feature]` function, and every kernel is differential-tested
//! against the table engine. Build with `--no-default-features` for a
//! fully `forbid(unsafe_code)`-equivalent portable crate.

#![deny(unsafe_code)]
#![warn(missing_docs)]

/// The IEEE 802.3 polynomial (reflected form), used by Ethernet and zlib.
pub const POLY_IEEE: u32 = 0xEDB8_8320;
/// The Castagnoli polynomial (reflected form), used by iSCSI and ext4.
pub const POLY_CASTAGNOLI: u32 = 0x82F6_3B78;

/// Which update kernel a [`Crc32`] engine dispatches to. Chosen once at
/// construction from the polynomial, the `hw` feature, and runtime CPU
/// feature detection — never on the per-call path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    /// Portable slice-by-16 table kernel (always available).
    Slice16,
    /// `x86_64` SSE4.2 `crc32` instruction — Castagnoli polynomial only.
    #[cfg(all(feature = "hw", target_arch = "x86_64"))]
    HwCrc32c,
    /// `x86_64` PCLMULQDQ carry-less-multiply folding — IEEE polynomial.
    #[cfg(all(feature = "hw", target_arch = "x86_64"))]
    HwClmulIeee,
}

fn select_kernel(poly: u32) -> Kernel {
    #[cfg(all(feature = "hw", target_arch = "x86_64"))]
    {
        if poly == POLY_CASTAGNOLI && hw::have_crc32c() {
            return Kernel::HwCrc32c;
        }
        if poly == POLY_IEEE && hw::have_clmul() {
            return Kernel::HwClmulIeee;
        }
    }
    let _ = poly;
    Kernel::Slice16
}

/// A table-driven CRC32 engine with runtime-dispatched kernels.
pub struct Crc32 {
    table: [[u32; 256]; 16],
    init: u32,
    xorout: u32,
    kernel: Kernel,
}

impl Crc32 {
    /// Build an engine for `poly` (reflected) with the given pre/post
    /// conditioning. The fastest kernel the CPU supports for `poly` is
    /// selected here, once.
    pub fn with_params(poly: u32, init: u32, xorout: u32) -> Self {
        let mut table = [[0u32; 256]; 16];
        for n in 0..256u32 {
            let mut c = n;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ poly } else { c >> 1 };
            }
            table[0][n as usize] = c;
        }
        for k in 1..16 {
            for n in 0..256usize {
                let prev = table[k - 1][n];
                table[k][n] = (prev >> 8) ^ table[0][(prev & 0xFF) as usize];
            }
        }
        Crc32 {
            table,
            init,
            xorout,
            kernel: select_kernel(poly),
        }
    }

    /// The standard IEEE CRC32 (init = xorout = 0xFFFFFFFF), as used on the
    /// wire and by zlib's `crc32()`.
    pub fn ieee() -> Self {
        Self::with_params(POLY_IEEE, 0xFFFF_FFFF, 0xFFFF_FFFF)
    }

    /// The *raw* (linear) IEEE CRC32 with no conditioning: this is the
    /// variant for which `crc(a ^ b) == crc(a) ^ crc(b)` holds exactly, and
    /// the one SOLAR's aggregation check uses.
    pub fn ieee_raw() -> Self {
        Self::with_params(POLY_IEEE, 0, 0)
    }

    /// CRC32C (Castagnoli) with standard conditioning.
    pub fn castagnoli() -> Self {
        Self::with_params(POLY_CASTAGNOLI, 0xFFFF_FFFF, 0xFFFF_FFFF)
    }

    /// Compute the checksum of `data` in one shot.
    pub fn checksum(&self, data: &[u8]) -> u32 {
        let mut state = self.init;
        state = self.update(state, data);
        state ^ self.xorout
    }

    /// Feed `data` into an in-flight state (obtained from [`Crc32::start`]),
    /// dispatching to the kernel chosen at construction. All kernels
    /// compute the identical state function, so incremental mixes of
    /// engines/kernels agree bit-for-bit.
    pub fn update(&self, state: u32, data: &[u8]) -> u32 {
        match self.kernel {
            Kernel::Slice16 => self.update_slice16(state, data),
            #[cfg(all(feature = "hw", target_arch = "x86_64"))]
            Kernel::HwCrc32c => hw::crc32c_update(state, data),
            #[cfg(all(feature = "hw", target_arch = "x86_64"))]
            Kernel::HwClmulIeee => {
                let (state, rest) = hw::ieee_clmul_update(state, data);
                self.update_slice16(state, rest)
            }
        }
    }

    /// The portable slice-by-16 table kernel (two 64-bit loads, sixteen
    /// table lookups per iteration). Used directly when no hardware kernel
    /// applies and for the sub-16-byte tails of the PCLMULQDQ path.
    ///
    /// The lookups are written as a compact accumulator loop rather than
    /// one sixteen-term XOR expression: LLVM turns this form into
    /// substantially better code (~2.5× slice-by-8 here vs ~1.3× for the
    /// chained expression, which it schedules as a serial XOR chain).
    pub fn update_slice16(&self, mut state: u32, data: &[u8]) -> u32 {
        let t = &self.table;
        let mut chunks = data.chunks_exact(16);
        for c in &mut chunks {
            let lo = u64::from_le_bytes(c[..8].try_into().unwrap()) ^ u64::from(state);
            let hi = u64::from_le_bytes(c[8..].try_into().unwrap());
            let mut acc = 0u32;
            for (i, w) in [lo, hi].into_iter().enumerate() {
                let base = 15 - i * 8;
                for j in 0..8 {
                    acc ^= t[base - j][((w >> (8 * j)) & 0xFF) as usize];
                }
            }
            state = acc;
        }
        for &b in chunks.remainder() {
            state = (state >> 8) ^ t[0][((state ^ b as u32) & 0xFF) as usize];
        }
        state
    }

    /// The previous-generation slice-by-8 kernel, kept as the reference
    /// baseline for differential tests and the `crc32_4k` benchmark.
    pub fn update_slice8(&self, mut state: u32, data: &[u8]) -> u32 {
        let mut chunks = data.chunks_exact(8);
        for c in &mut chunks {
            state ^= u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            state = self.table[7][(state & 0xFF) as usize]
                ^ self.table[6][((state >> 8) & 0xFF) as usize]
                ^ self.table[5][((state >> 16) & 0xFF) as usize]
                ^ self.table[4][(state >> 24) as usize]
                ^ self.table[3][(hi & 0xFF) as usize]
                ^ self.table[2][((hi >> 8) & 0xFF) as usize]
                ^ self.table[1][((hi >> 16) & 0xFF) as usize]
                ^ self.table[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            state = (state >> 8) ^ self.table[0][((state ^ b as u32) & 0xFF) as usize];
        }
        state
    }

    /// Human-readable name of the dispatched kernel (`"slice16"`,
    /// `"sse4.2-crc32"` or `"pclmulqdq"`) — surfaced in benches and logs.
    pub fn kernel_name(&self) -> &'static str {
        match self.kernel {
            Kernel::Slice16 => "slice16",
            #[cfg(all(feature = "hw", target_arch = "x86_64"))]
            Kernel::HwCrc32c => "sse4.2-crc32",
            #[cfg(all(feature = "hw", target_arch = "x86_64"))]
            Kernel::HwClmulIeee => "pclmulqdq",
        }
    }

    /// Pin this engine to the portable slice-by-16 kernel regardless of
    /// CPU support — for differential tests and benchmark baselines.
    pub fn force_portable(mut self) -> Self {
        self.kernel = Kernel::Slice16;
        self
    }

    /// Begin incremental computation; feed with [`Crc32::update`], finish
    /// with [`Crc32::finish`].
    pub fn start(&self) -> u32 {
        self.init
    }

    /// Finish incremental computation.
    pub fn finish(&self, state: u32) -> u32 {
        state ^ self.xorout
    }
}

/// Hardware CRC kernels — the crate's **only** `unsafe` code, scoped to
/// this module per the isolation policy in the crate docs.
///
/// Both entry points are safe functions that assert the required CPU
/// features (detection results are cached by `std`, so the check is a
/// relaxed atomic load) before entering the `#[target_feature]` internals.
/// [`select_kernel`] only routes here when detection already succeeded, so
/// the assertions are second-line defence for direct callers.
#[cfg(all(feature = "hw", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod hw {
    use core::arch::x86_64::*;
    use std::arch::is_x86_feature_detected;

    /// True if the SSE4.2 `crc32` instruction is available.
    pub fn have_crc32c() -> bool {
        is_x86_feature_detected!("sse4.2")
    }

    /// True if PCLMULQDQ folding (plus the SSE4.1 extract it needs) is
    /// available.
    pub fn have_clmul() -> bool {
        is_x86_feature_detected!("pclmulqdq") && is_x86_feature_detected!("sse4.1")
    }

    /// CRC32C state update via the dedicated `crc32` instruction: 8 bytes
    /// per `crc32q`, byte-wise tail. Identical state function to the
    /// Castagnoli table kernels.
    pub fn crc32c_update(state: u32, data: &[u8]) -> u32 {
        assert!(have_crc32c(), "crc32c_update requires SSE4.2");
        // SAFETY: SSE4.2 support was just asserted.
        unsafe { crc32c_sse42(state, data) }
    }

    // SAFETY contract: caller must ensure SSE4.2 is available (the safe
    // wrapper asserts it). The body itself only uses slice-bounded reads —
    // `chunks_exact(8)` guarantees every `try_into` sees exactly 8 bytes.
    #[target_feature(enable = "sse4.2")]
    unsafe fn crc32c_sse42(state: u32, data: &[u8]) -> u32 {
        let mut chunks = data.chunks_exact(8);
        let mut c = u64::from(state);
        for ch in &mut chunks {
            c = _mm_crc32_u64(c, u64::from_le_bytes(ch.try_into().unwrap()));
        }
        let mut c = c as u32;
        for &b in chunks.remainder() {
            c = _mm_crc32_u8(c, b);
        }
        c
    }

    /// IEEE CRC32 state update by PCLMULQDQ folding over the largest
    /// 16-byte-aligned prefix (when ≥ 64 bytes). Returns the new state and
    /// the unconsumed tail for the caller's table kernel. Constants and
    /// reduction follow the classic zlib/Intel "Fast CRC Computation Using
    /// PCLMULQDQ" schedule for the reflected 0x104C11DB7 polynomial.
    pub fn ieee_clmul_update(state: u32, data: &[u8]) -> (u32, &[u8]) {
        if data.len() < 64 {
            return (state, data);
        }
        assert!(have_clmul(), "ieee_clmul_update requires PCLMULQDQ+SSE4.1");
        let folded = data.len() & !15;
        let (head, tail) = data.split_at(folded);
        // SAFETY: PCLMULQDQ and SSE4.1 support was just asserted, and
        // `head` is ≥ 64 bytes and a multiple of 16 by construction.
        let crc = unsafe { ieee_clmul(state, head) };
        (crc, tail)
    }

    // SAFETY contract: caller must ensure PCLMULQDQ+SSE4.1 are available
    // (the safe wrapper asserts both) and pass `data` of ≥ 64 bytes, a
    // multiple of 16 — every unaligned `load(off)` below stays in bounds
    // because `off + 16 <= data.len()` at each call site.
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    unsafe fn ieee_clmul(crc: u32, data: &[u8]) -> u32 {
        debug_assert!(data.len() >= 64 && data.len().is_multiple_of(16));

        // Folding constants: x^(64·k) mod P for the distances used below.
        let k1k2 = _mm_set_epi64x(0x0001_c6e4_1596, 0x0001_5444_2bd4);
        let k3k4 = _mm_set_epi64x(0x0000_ccaa_009e, 0x0001_7519_97d0);
        let k5k0 = _mm_set_epi64x(0, 0x0001_63cd_6124);
        let poly = _mm_set_epi64x(0x0001_f701_1641, 0x0001_db71_0641);

        let load = |off: usize| -> __m128i {
            // SAFETY (caller-checked): `off + 16 <= data.len()` at every
            // call site; unaligned load is explicitly permitted.
            unsafe { _mm_loadu_si128(data.as_ptr().add(off) as *const __m128i) }
        };

        let mut x1 = load(0x00);
        let mut x2 = load(0x10);
        let mut x3 = load(0x20);
        let mut x4 = load(0x30);
        x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(crc as i32));

        let mut off = 64;
        // Fold 4×16 bytes at a distance of 64 bytes.
        while data.len() - off >= 64 {
            let x5 = _mm_clmulepi64_si128::<0x00>(x1, k1k2);
            let x6 = _mm_clmulepi64_si128::<0x00>(x2, k1k2);
            let x7 = _mm_clmulepi64_si128::<0x00>(x3, k1k2);
            let x8 = _mm_clmulepi64_si128::<0x00>(x4, k1k2);
            x1 = _mm_clmulepi64_si128::<0x11>(x1, k1k2);
            x2 = _mm_clmulepi64_si128::<0x11>(x2, k1k2);
            x3 = _mm_clmulepi64_si128::<0x11>(x3, k1k2);
            x4 = _mm_clmulepi64_si128::<0x11>(x4, k1k2);
            x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), load(off));
            x2 = _mm_xor_si128(_mm_xor_si128(x2, x6), load(off + 0x10));
            x3 = _mm_xor_si128(_mm_xor_si128(x3, x7), load(off + 0x20));
            x4 = _mm_xor_si128(_mm_xor_si128(x4, x8), load(off + 0x30));
            off += 64;
        }

        // Fold the four accumulators into one.
        let x5 = _mm_clmulepi64_si128::<0x00>(x1, k3k4);
        x1 = _mm_clmulepi64_si128::<0x11>(x1, k3k4);
        x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
        let x5 = _mm_clmulepi64_si128::<0x00>(x1, k3k4);
        x1 = _mm_clmulepi64_si128::<0x11>(x1, k3k4);
        x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), x5);
        let x5 = _mm_clmulepi64_si128::<0x00>(x1, k3k4);
        x1 = _mm_clmulepi64_si128::<0x11>(x1, k3k4);
        x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), x5);

        // Single 16-byte folds for the remaining aligned tail.
        while data.len() - off >= 16 {
            let x5 = _mm_clmulepi64_si128::<0x00>(x1, k3k4);
            x1 = _mm_clmulepi64_si128::<0x11>(x1, k3k4);
            x1 = _mm_xor_si128(_mm_xor_si128(x1, load(off)), x5);
            off += 16;
        }
        debug_assert_eq!(off, data.len());

        // Fold 128 → 64 bits, then Barrett-reduce 64 → 32 bits.
        let mask32 = _mm_setr_epi32(-1, 0, -1, 0);
        let x2 = _mm_clmulepi64_si128::<0x10>(x1, k3k4);
        x1 = _mm_srli_si128::<8>(x1);
        x1 = _mm_xor_si128(x1, x2);

        let x2 = _mm_srli_si128::<4>(x1);
        x1 = _mm_and_si128(x1, mask32);
        x1 = _mm_clmulepi64_si128::<0x00>(x1, k5k0);
        x1 = _mm_xor_si128(x1, x2);

        let mut x2 = _mm_and_si128(x1, mask32);
        x2 = _mm_clmulepi64_si128::<0x10>(x2, poly);
        x2 = _mm_and_si128(x2, mask32);
        x2 = _mm_clmulepi64_si128::<0x00>(x2, poly);
        x1 = _mm_xor_si128(x1, x2);

        _mm_extract_epi32::<1>(x1) as u32
    }
}

thread_local! {
    static IEEE: Crc32 = Crc32::ieee();
    static IEEE_RAW: Crc32 = Crc32::ieee_raw();
    static CASTAGNOLI: Crc32 = Crc32::castagnoli();
}

/// Standard IEEE CRC32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    IEEE.with(|c| c.checksum(data))
}

/// Raw (linear) IEEE CRC32 of `data` — `crc32_raw(a ^ b) ==
/// crc32_raw(a) ^ crc32_raw(b)` for equal-length `a`, `b`.
pub fn crc32_raw(data: &[u8]) -> u32 {
    IEEE_RAW.with(|c| c.checksum(data))
}

/// CRC32C (Castagnoli) of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    CASTAGNOLI.with(|c| c.checksum(data))
}

// --- CRC combination (zlib's gf2-matrix method) -------------------------

fn gf2_matrix_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

fn gf2_matrix_square(square: &mut [u32; 32], mat: &[u32; 32]) {
    for n in 0..32 {
        square[n] = gf2_matrix_times(mat, mat[n]);
    }
}

/// Combine `crc1 = crc32(A)` and `crc2 = crc32(B)` into `crc32(A ++ B)`
/// where `len2 = B.len()`, without touching the data. Used to CRC a large
/// I/O from its per-block CRCs when blocks are *concatenated* (the paper's
/// blocks are XOR-aggregated instead — see [`SegmentChecker`] — but RPC
/// payload assembly wants concatenation).
pub fn combine(crc1: u32, crc2: u32, len2: u64) -> u32 {
    if len2 == 0 {
        return crc1;
    }
    let mut even = [0u32; 32];
    let mut odd = [0u32; 32];

    // odd = operator for one zero bit.
    odd[0] = POLY_IEEE;
    let mut row = 1u32;
    for item in odd.iter_mut().skip(1) {
        *item = row;
        row <<= 1;
    }
    gf2_matrix_square(&mut even, &odd); // 2 bits
    gf2_matrix_square(&mut odd, &even); // 4 bits

    let mut crc1 = crc1;
    let mut len2 = len2;
    loop {
        gf2_matrix_square(&mut even, &odd); // zero-byte operators
        if len2 & 1 != 0 {
            crc1 = gf2_matrix_times(&even, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
        gf2_matrix_square(&mut odd, &even);
        if len2 & 1 != 0 {
            crc1 = gf2_matrix_times(&odd, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
    }
    crc1 ^ crc2
}

// --- SOLAR's segment-level aggregation check ----------------------------

/// Outcome of a segment-level CRC verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentVerdict {
    /// Aggregate matched: with overwhelming probability every block and
    /// every hardware-computed CRC was correct.
    Ok,
    /// Aggregate mismatched: at least one block or CRC was corrupted
    /// (e.g. an FPGA bit flip); the I/O must be retried / repaired.
    Corrupt,
}

/// The software CRC aggregation check of §4.5.
///
/// The FPGA computes a raw CRC32 per 4 KiB block and ships it with the
/// packet. Software XOR-accumulates (a) the block payloads and (b) the
/// claimed CRCs, then performs **one** CRC over the XOR of the payloads:
/// by linearity of the raw CRC it must equal the XOR of the claimed CRCs.
/// A single bit flip in any payload or any claimed CRC breaks the equality
/// with probability `1 - 2^-32` per flipped segment.
pub struct SegmentChecker {
    block_size: usize,
    xor_acc: Vec<u8>,
    crc_acc: u32,
    blocks: usize,
}

impl SegmentChecker {
    /// A checker for segments of `block_size`-byte blocks (4096 in EBS).
    ///
    /// # Panics
    /// Panics if `block_size` is zero.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0);
        SegmentChecker {
            block_size,
            xor_acc: vec![0; block_size],
            crc_acc: 0,
            blocks: 0,
        }
    }

    /// Number of blocks accumulated so far.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Accumulate one block and the CRC the hardware claims for it.
    /// Blocks shorter than the configured size are zero-padded, matching
    /// the FPGA's fixed-width datapath.
    ///
    /// # Panics
    /// Panics if `block` is longer than the configured block size.
    pub fn add_block(&mut self, block: &[u8], claimed_raw_crc: u32) {
        assert!(block.len() <= self.block_size, "oversized block");
        // XOR 8 bytes at a time; the autovectorizer widens this further.
        let words = block.len() & !7;
        for (acc, b) in self.xor_acc[..words]
            .chunks_exact_mut(8)
            .zip(block[..words].chunks_exact(8))
        {
            let x = u64::from_le_bytes(acc[..].try_into().unwrap())
                ^ u64::from_le_bytes(b.try_into().unwrap());
            acc.copy_from_slice(&x.to_le_bytes());
        }
        for (acc, b) in self.xor_acc[words..].iter_mut().zip(block[words..].iter()) {
            *acc ^= *b;
        }
        self.crc_acc ^= claimed_raw_crc;
        self.blocks += 1;
    }

    /// Verify the aggregate and reset for the next segment.
    pub fn verify_and_reset(&mut self) -> SegmentVerdict {
        let expect = crc32_raw(&self.xor_acc);
        let verdict = if expect == self.crc_acc {
            SegmentVerdict::Ok
        } else {
            SegmentVerdict::Corrupt
        };
        self.xor_acc.iter_mut().for_each(|b| *b = 0);
        self.crc_acc = 0;
        self.blocks = 0;
        verdict
    }
}

/// Per-block raw CRC as the FPGA's CRC module computes it. Shorter blocks
/// are treated as zero-padded to `block_size` so that aggregation across
/// mixed sizes stays consistent.
pub fn block_crc_raw(block: &[u8], block_size: usize) -> u32 {
    if block.len() == block_size {
        crc32_raw(block)
    } else {
        let mut padded = vec![0u8; block_size];
        padded[..block.len()].copy_from_slice(block);
        crc32_raw(&padded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // "123456789" — canonical check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let c = Crc32::ieee();
        let data = b"hello crc world, split me up";
        let mut st = c.start();
        st = c.update(st, &data[..7]);
        st = c.update(st, &data[7..13]);
        st = c.update(st, &data[13..]);
        assert_eq!(c.finish(st), c.checksum(data));
    }

    #[test]
    fn slice_by_8_matches_bytewise() {
        // Compare against a simple bit-at-a-time implementation.
        fn naive(data: &[u8]) -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in data {
                crc ^= b as u32;
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        (crc >> 1) ^ POLY_IEEE
                    } else {
                        crc >> 1
                    };
                }
            }
            crc ^ 0xFFFF_FFFF
        }
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7 + 13) as u8).collect();
        assert_eq!(crc32(&data), naive(&data));
    }

    #[test]
    fn all_kernels_agree_on_a_block() {
        // 4096 bytes of varied data through every engine, dispatched vs
        // the two portable kernels.
        let data: Vec<u8> = (0..4096u32).map(|i| (i * 31 + 7) as u8).collect();
        for engine in [Crc32::ieee(), Crc32::ieee_raw(), Crc32::castagnoli()] {
            let st = engine.start();
            let dispatched = engine.update(st, &data);
            assert_eq!(dispatched, engine.update_slice16(st, &data), "slice16");
            assert_eq!(dispatched, engine.update_slice8(st, &data), "slice8");
        }
    }

    #[test]
    fn dispatch_is_incremental_like_the_table() {
        // Hardware kernels must compute the same *state function*, so
        // splitting at awkward offsets changes nothing.
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 131) as u8).collect();
        for engine in [Crc32::ieee(), Crc32::castagnoli()] {
            let mut st = engine.start();
            for chunk in data.chunks(97) {
                st = engine.update(st, chunk);
            }
            assert_eq!(engine.finish(st), engine.checksum(&data));
        }
    }

    #[test]
    fn kernel_name_is_reported() {
        let names = ["slice16", "sse4.2-crc32", "pclmulqdq"];
        assert!(names.contains(&Crc32::ieee().kernel_name()));
        assert!(names.contains(&Crc32::castagnoli().kernel_name()));
        assert_eq!(Crc32::ieee().force_portable().kernel_name(), "slice16");
    }

    #[test]
    fn raw_crc_is_linear() {
        let a: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let b: Vec<u8> = (0..4096u32).map(|i| (i % 241) as u8).collect();
        let x: Vec<u8> = a.iter().zip(b.iter()).map(|(p, q)| p ^ q).collect();
        assert_eq!(crc32_raw(&x), crc32_raw(&a) ^ crc32_raw(&b));
    }

    #[test]
    fn standard_crc_is_not_linear() {
        // The conditioned CRC is affine, not linear — this is exactly why
        // the aggregation check must use the raw variant.
        let a = [1u8; 64];
        let b = [2u8; 64];
        let x: Vec<u8> = a.iter().zip(b.iter()).map(|(p, q)| p ^ q).collect();
        assert_ne!(crc32(&x), crc32(&a) ^ crc32(&b));
    }

    #[test]
    fn combine_matches_concatenation() {
        let a = b"first part of the stream";
        let b = b"and the second part, somewhat longer for good measure";
        let whole: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(combine(crc32(a), crc32(b), b.len() as u64), crc32(&whole));
    }

    #[test]
    fn combine_with_empty_tail() {
        assert_eq!(combine(crc32(b"abc"), crc32(b""), 0), crc32(b"abc"));
    }

    #[test]
    fn segment_checker_accepts_good_blocks() {
        let mut chk = SegmentChecker::new(64);
        for seed in 0..8u8 {
            let block: Vec<u8> = (0..64u32)
                .map(|i| (i as u8).wrapping_mul(seed + 1))
                .collect();
            chk.add_block(&block, crc32_raw(&block));
        }
        assert_eq!(chk.verify_and_reset(), SegmentVerdict::Ok);
    }

    #[test]
    fn segment_checker_detects_payload_flip() {
        let mut chk = SegmentChecker::new(64);
        let block = [0xABu8; 64];
        let crc = crc32_raw(&block);
        let mut bad = block;
        bad[17] ^= 0x10; // bit flip after CRC computation
        chk.add_block(&bad, crc);
        chk.add_block(&block, crc);
        assert_eq!(chk.verify_and_reset(), SegmentVerdict::Corrupt);
    }

    #[test]
    fn segment_checker_detects_crc_flip() {
        let mut chk = SegmentChecker::new(64);
        let block = [0x5Au8; 64];
        chk.add_block(&block, crc32_raw(&block) ^ 0x4000); // corrupted CRC
        assert_eq!(chk.verify_and_reset(), SegmentVerdict::Corrupt);
    }

    #[test]
    fn segment_checker_resets() {
        let mut chk = SegmentChecker::new(32);
        let block = [7u8; 32];
        chk.add_block(&block, 0xdead_beef); // wrong
        assert_eq!(chk.verify_and_reset(), SegmentVerdict::Corrupt);
        chk.add_block(&block, crc32_raw(&block));
        assert_eq!(chk.verify_and_reset(), SegmentVerdict::Ok);
    }

    #[test]
    fn short_blocks_are_padded() {
        let mut chk = SegmentChecker::new(64);
        let short = [9u8; 40];
        chk.add_block(&short, block_crc_raw(&short, 64));
        assert_eq!(chk.verify_and_reset(), SegmentVerdict::Ok);
    }
}
