//! # ebs-crc — CRC32 engines and SOLAR's segment-level CRC aggregation
//!
//! EBS relies on CRC to catch corruption anywhere on the data path. SOLAR
//! computes per-block CRC32 *inside the FPGA* — which is itself the largest
//! source of corruption (bit flips, §4.4/Fig. 11) — so the paper adds a
//! software cross-check: the CPU verifies an **aggregate** of the per-block
//! CRCs over a segment, exploiting CRC32 linearity
//! `CRC(A ⊕ B) = CRC(A) ⊕ CRC(B)` (for the raw, init=0/xorout=0 variant and
//! equal-length inputs). One XOR accumulation plus a single CRC replaces a
//! per-block software CRC, preserving "nine 9s" integrity at a fraction of
//! the CPU cost.
//!
//! This crate provides:
//! * [`Crc32`] — parameterised, reflected, slice-by-8 table CRC (IEEE and
//!   Castagnoli polynomials, standard and raw conditioning);
//! * [`crc32`] / [`crc32c`] / [`crc32_raw`] — convenience one-shots;
//! * [`combine`] — zlib-style CRC concatenation (GF(2) matrix method);
//! * [`SegmentChecker`] — the software aggregation check of §4.5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The IEEE 802.3 polynomial (reflected form), used by Ethernet and zlib.
pub const POLY_IEEE: u32 = 0xEDB8_8320;
/// The Castagnoli polynomial (reflected form), used by iSCSI and ext4.
pub const POLY_CASTAGNOLI: u32 = 0x82F6_3B78;

/// A table-driven CRC32 engine (slice-by-8).
pub struct Crc32 {
    table: [[u32; 256]; 8],
    init: u32,
    xorout: u32,
}

impl Crc32 {
    /// Build an engine for `poly` (reflected) with the given pre/post
    /// conditioning.
    pub fn with_params(poly: u32, init: u32, xorout: u32) -> Self {
        let mut table = [[0u32; 256]; 8];
        for n in 0..256u32 {
            let mut c = n;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ poly } else { c >> 1 };
            }
            table[0][n as usize] = c;
        }
        for k in 1..8 {
            for n in 0..256usize {
                let prev = table[k - 1][n];
                table[k][n] = (prev >> 8) ^ table[0][(prev & 0xFF) as usize];
            }
        }
        Crc32 {
            table,
            init,
            xorout,
        }
    }

    /// The standard IEEE CRC32 (init = xorout = 0xFFFFFFFF), as used on the
    /// wire and by zlib's `crc32()`.
    pub fn ieee() -> Self {
        Self::with_params(POLY_IEEE, 0xFFFF_FFFF, 0xFFFF_FFFF)
    }

    /// The *raw* (linear) IEEE CRC32 with no conditioning: this is the
    /// variant for which `crc(a ^ b) == crc(a) ^ crc(b)` holds exactly, and
    /// the one SOLAR's aggregation check uses.
    pub fn ieee_raw() -> Self {
        Self::with_params(POLY_IEEE, 0, 0)
    }

    /// CRC32C (Castagnoli) with standard conditioning.
    pub fn castagnoli() -> Self {
        Self::with_params(POLY_CASTAGNOLI, 0xFFFF_FFFF, 0xFFFF_FFFF)
    }

    /// Compute the checksum of `data` in one shot.
    pub fn checksum(&self, data: &[u8]) -> u32 {
        let mut state = self.init;
        state = self.update(state, data);
        state ^ self.xorout
    }

    /// Feed `data` into an in-flight state (obtained from [`Crc32::start`]).
    pub fn update(&self, mut state: u32, data: &[u8]) -> u32 {
        let mut chunks = data.chunks_exact(8);
        for c in &mut chunks {
            state ^= u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            state = self.table[7][(state & 0xFF) as usize]
                ^ self.table[6][((state >> 8) & 0xFF) as usize]
                ^ self.table[5][((state >> 16) & 0xFF) as usize]
                ^ self.table[4][(state >> 24) as usize]
                ^ self.table[3][(hi & 0xFF) as usize]
                ^ self.table[2][((hi >> 8) & 0xFF) as usize]
                ^ self.table[1][((hi >> 16) & 0xFF) as usize]
                ^ self.table[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            state = (state >> 8) ^ self.table[0][((state ^ b as u32) & 0xFF) as usize];
        }
        state
    }

    /// Begin incremental computation; feed with [`Crc32::update`], finish
    /// with [`Crc32::finish`].
    pub fn start(&self) -> u32 {
        self.init
    }

    /// Finish incremental computation.
    pub fn finish(&self, state: u32) -> u32 {
        state ^ self.xorout
    }
}

thread_local! {
    static IEEE: Crc32 = Crc32::ieee();
    static IEEE_RAW: Crc32 = Crc32::ieee_raw();
    static CASTAGNOLI: Crc32 = Crc32::castagnoli();
}

/// Standard IEEE CRC32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    IEEE.with(|c| c.checksum(data))
}

/// Raw (linear) IEEE CRC32 of `data` — `crc32_raw(a ^ b) ==
/// crc32_raw(a) ^ crc32_raw(b)` for equal-length `a`, `b`.
pub fn crc32_raw(data: &[u8]) -> u32 {
    IEEE_RAW.with(|c| c.checksum(data))
}

/// CRC32C (Castagnoli) of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    CASTAGNOLI.with(|c| c.checksum(data))
}

// --- CRC combination (zlib's gf2-matrix method) -------------------------

fn gf2_matrix_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

fn gf2_matrix_square(square: &mut [u32; 32], mat: &[u32; 32]) {
    for n in 0..32 {
        square[n] = gf2_matrix_times(mat, mat[n]);
    }
}

/// Combine `crc1 = crc32(A)` and `crc2 = crc32(B)` into `crc32(A ++ B)`
/// where `len2 = B.len()`, without touching the data. Used to CRC a large
/// I/O from its per-block CRCs when blocks are *concatenated* (the paper's
/// blocks are XOR-aggregated instead — see [`SegmentChecker`] — but RPC
/// payload assembly wants concatenation).
pub fn combine(crc1: u32, crc2: u32, len2: u64) -> u32 {
    if len2 == 0 {
        return crc1;
    }
    let mut even = [0u32; 32];
    let mut odd = [0u32; 32];

    // odd = operator for one zero bit.
    odd[0] = POLY_IEEE;
    let mut row = 1u32;
    for item in odd.iter_mut().skip(1) {
        *item = row;
        row <<= 1;
    }
    gf2_matrix_square(&mut even, &odd); // 2 bits
    gf2_matrix_square(&mut odd, &even); // 4 bits

    let mut crc1 = crc1;
    let mut len2 = len2;
    loop {
        gf2_matrix_square(&mut even, &odd); // zero-byte operators
        if len2 & 1 != 0 {
            crc1 = gf2_matrix_times(&even, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
        gf2_matrix_square(&mut odd, &even);
        if len2 & 1 != 0 {
            crc1 = gf2_matrix_times(&odd, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
    }
    crc1 ^ crc2
}

// --- SOLAR's segment-level aggregation check ----------------------------

/// Outcome of a segment-level CRC verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentVerdict {
    /// Aggregate matched: with overwhelming probability every block and
    /// every hardware-computed CRC was correct.
    Ok,
    /// Aggregate mismatched: at least one block or CRC was corrupted
    /// (e.g. an FPGA bit flip); the I/O must be retried / repaired.
    Corrupt,
}

/// The software CRC aggregation check of §4.5.
///
/// The FPGA computes a raw CRC32 per 4 KiB block and ships it with the
/// packet. Software XOR-accumulates (a) the block payloads and (b) the
/// claimed CRCs, then performs **one** CRC over the XOR of the payloads:
/// by linearity of the raw CRC it must equal the XOR of the claimed CRCs.
/// A single bit flip in any payload or any claimed CRC breaks the equality
/// with probability `1 - 2^-32` per flipped segment.
pub struct SegmentChecker {
    block_size: usize,
    xor_acc: Vec<u8>,
    crc_acc: u32,
    blocks: usize,
}

impl SegmentChecker {
    /// A checker for segments of `block_size`-byte blocks (4096 in EBS).
    ///
    /// # Panics
    /// Panics if `block_size` is zero.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0);
        SegmentChecker {
            block_size,
            xor_acc: vec![0; block_size],
            crc_acc: 0,
            blocks: 0,
        }
    }

    /// Number of blocks accumulated so far.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Accumulate one block and the CRC the hardware claims for it.
    /// Blocks shorter than the configured size are zero-padded, matching
    /// the FPGA's fixed-width datapath.
    ///
    /// # Panics
    /// Panics if `block` is longer than the configured block size.
    pub fn add_block(&mut self, block: &[u8], claimed_raw_crc: u32) {
        assert!(block.len() <= self.block_size, "oversized block");
        for (acc, b) in self.xor_acc.iter_mut().zip(block.iter()) {
            *acc ^= *b;
        }
        self.crc_acc ^= claimed_raw_crc;
        self.blocks += 1;
    }

    /// Verify the aggregate and reset for the next segment.
    pub fn verify_and_reset(&mut self) -> SegmentVerdict {
        let expect = crc32_raw(&self.xor_acc);
        let verdict = if expect == self.crc_acc {
            SegmentVerdict::Ok
        } else {
            SegmentVerdict::Corrupt
        };
        self.xor_acc.iter_mut().for_each(|b| *b = 0);
        self.crc_acc = 0;
        self.blocks = 0;
        verdict
    }
}

/// Per-block raw CRC as the FPGA's CRC module computes it. Shorter blocks
/// are treated as zero-padded to `block_size` so that aggregation across
/// mixed sizes stays consistent.
pub fn block_crc_raw(block: &[u8], block_size: usize) -> u32 {
    if block.len() == block_size {
        crc32_raw(block)
    } else {
        let mut padded = vec![0u8; block_size];
        padded[..block.len()].copy_from_slice(block);
        crc32_raw(&padded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // "123456789" — canonical check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let c = Crc32::ieee();
        let data = b"hello crc world, split me up";
        let mut st = c.start();
        st = c.update(st, &data[..7]);
        st = c.update(st, &data[7..13]);
        st = c.update(st, &data[13..]);
        assert_eq!(c.finish(st), c.checksum(data));
    }

    #[test]
    fn slice_by_8_matches_bytewise() {
        // Compare against a simple bit-at-a-time implementation.
        fn naive(data: &[u8]) -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in data {
                crc ^= b as u32;
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        (crc >> 1) ^ POLY_IEEE
                    } else {
                        crc >> 1
                    };
                }
            }
            crc ^ 0xFFFF_FFFF
        }
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7 + 13) as u8).collect();
        assert_eq!(crc32(&data), naive(&data));
    }

    #[test]
    fn raw_crc_is_linear() {
        let a: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let b: Vec<u8> = (0..4096u32).map(|i| (i % 241) as u8).collect();
        let x: Vec<u8> = a.iter().zip(b.iter()).map(|(p, q)| p ^ q).collect();
        assert_eq!(crc32_raw(&x), crc32_raw(&a) ^ crc32_raw(&b));
    }

    #[test]
    fn standard_crc_is_not_linear() {
        // The conditioned CRC is affine, not linear — this is exactly why
        // the aggregation check must use the raw variant.
        let a = [1u8; 64];
        let b = [2u8; 64];
        let x: Vec<u8> = a.iter().zip(b.iter()).map(|(p, q)| p ^ q).collect();
        assert_ne!(crc32(&x), crc32(&a) ^ crc32(&b));
    }

    #[test]
    fn combine_matches_concatenation() {
        let a = b"first part of the stream";
        let b = b"and the second part, somewhat longer for good measure";
        let whole: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(combine(crc32(a), crc32(b), b.len() as u64), crc32(&whole));
    }

    #[test]
    fn combine_with_empty_tail() {
        assert_eq!(combine(crc32(b"abc"), crc32(b""), 0), crc32(b"abc"));
    }

    #[test]
    fn segment_checker_accepts_good_blocks() {
        let mut chk = SegmentChecker::new(64);
        for seed in 0..8u8 {
            let block: Vec<u8> = (0..64u32)
                .map(|i| (i as u8).wrapping_mul(seed + 1))
                .collect();
            chk.add_block(&block, crc32_raw(&block));
        }
        assert_eq!(chk.verify_and_reset(), SegmentVerdict::Ok);
    }

    #[test]
    fn segment_checker_detects_payload_flip() {
        let mut chk = SegmentChecker::new(64);
        let block = [0xABu8; 64];
        let crc = crc32_raw(&block);
        let mut bad = block;
        bad[17] ^= 0x10; // bit flip after CRC computation
        chk.add_block(&bad, crc);
        chk.add_block(&block, crc);
        assert_eq!(chk.verify_and_reset(), SegmentVerdict::Corrupt);
    }

    #[test]
    fn segment_checker_detects_crc_flip() {
        let mut chk = SegmentChecker::new(64);
        let block = [0x5Au8; 64];
        chk.add_block(&block, crc32_raw(&block) ^ 0x4000); // corrupted CRC
        assert_eq!(chk.verify_and_reset(), SegmentVerdict::Corrupt);
    }

    #[test]
    fn segment_checker_resets() {
        let mut chk = SegmentChecker::new(32);
        let block = [7u8; 32];
        chk.add_block(&block, 0xdead_beef); // wrong
        assert_eq!(chk.verify_and_reset(), SegmentVerdict::Corrupt);
        chk.add_block(&block, crc32_raw(&block));
        assert_eq!(chk.verify_and_reset(), SegmentVerdict::Ok);
    }

    #[test]
    fn short_blocks_are_padded() {
        let mut chk = SegmentChecker::new(64);
        let short = [9u8; 40];
        chk.add_block(&short, block_crc_raw(&short, 64));
        assert_eq!(chk.verify_and_reset(), SegmentVerdict::Ok);
    }
}
