//! Plain-text table rendering for experiment output.
//!
//! The benchmark harness prints each reproduced figure/table as an aligned
//! text table; keeping the renderer here lets integration tests snapshot
//! the same structure the harness prints.

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len().max(row.len()), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Access the raw rows (for assertions in tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", c, w = width[i]));
            }
            line.trim_end().to_string()
        };
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header, &width));
            out.push('\n');
            let total: usize = width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Format nanoseconds as microseconds with one decimal, the unit used in
/// the paper's latency tables.
pub fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1000.0)
}

/// Format a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "22"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("a-much-longer-name  22"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["only-one"]);
        assert_eq!(t.rows()[0].len(), 3);
    }

    #[test]
    fn formats() {
        assert_eq!(us(70_100), "70.1");
        assert_eq!(f1(3.15159), "3.2");
        assert_eq!(f2(3.15159), "3.15");
    }
}
