//! Log-bucketed latency histogram.
//!
//! HdrHistogram-style: values are bucketed with a fixed relative error
//! (sub-bucket resolution of 1/64, i.e. ≤ ~1.6% quantile error), which is
//! plenty for reproducing median / p95 / p99 rows from the paper while
//! keeping memory constant regardless of sample count.

/// A histogram of non-negative integer values (we use nanoseconds).
#[derive(Debug, Clone)]
pub struct Histogram {
    /// counts[bucket][sub] — bucket = floor(log2(v)) clamped, 64 linear
    /// sub-buckets per power of two.
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

const SUB_BITS: u32 = 6; // 64 sub-buckets
const SUB: u64 = 1 << SUB_BITS;
const BUCKETS: usize = 64;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS * SUB as usize],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index(value: u64) -> usize {
        if value < SUB {
            return value as usize;
        }
        let bucket = 63 - value.leading_zeros();
        let shift = bucket - SUB_BITS;
        let sub = (value >> shift) & (SUB - 1);
        // bucket SUB_BITS..63 each contribute SUB slots beyond the first
        // linear region.
        (((bucket - SUB_BITS + 1) as u64 * SUB) + sub) as usize
    }

    fn bucket_value(index: usize) -> u64 {
        let index = index as u64;
        if index < SUB {
            return index;
        }
        let bucket = index / SUB + SUB_BITS as u64 - 1;
        let sub = index % SUB;
        let shift = bucket - SUB_BITS as u64;
        // Midpoint of the sub-bucket to halve the representation error.
        ((SUB + sub) << shift) + (1u64 << shift) / 2
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        let idx = Self::index(value).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record a [`SimDuration`](ebs_sim::SimDuration)-like nanosecond span.
    pub fn record_ns(&mut self, ns: u64) {
        self.record(ns);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]`, with ≤ ~1.6% relative error.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn median(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.median(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn small_values_exact() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5] {
            h.record(v);
        }
        assert_eq!(h.median(), 3);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 5);
        assert_eq!(h.mean(), 3.0);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 50_000u64), (0.95, 95_000), (0.99, 99_000)] {
            let got = h.quantile(q);
            let err = (got as f64 - expect as f64).abs() / expect as f64;
            assert!(err < 0.02, "q={q} got={got} expect={expect} err={err}");
        }
    }

    #[test]
    fn large_values_bounded_error() {
        let mut h = Histogram::new();
        let v = 3_141_592_653u64;
        h.record(v);
        let got = h.median();
        let err = (got as f64 - v as f64).abs() / v as f64;
        assert!(err < 0.02, "got={got} err={err}");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 30);
    }

    #[test]
    fn quantile_clamps_to_extremes() {
        let mut h = Histogram::new();
        h.record(1000);
        assert_eq!(h.quantile(0.0), 1000);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn empty_percentiles_are_zero() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
        assert_eq!(h.p95(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_sample_every_quantile() {
        let mut h = Histogram::new();
        h.record(42);
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 42, "q={q}");
        }
        assert_eq!(h.mean(), 42.0);
        assert_eq!((h.min(), h.max()), (42, 42));
    }

    #[test]
    fn merge_disjoint_ranges_keeps_both_tails() {
        // Low cluster in one histogram, high cluster (far beyond the
        // exact sub-bucket range) in the other: min/mean/max and the
        // extreme quantiles must reflect the union.
        let mut lo = Histogram::new();
        let mut hi = Histogram::new();
        for v in 1..=100u64 {
            lo.record(v);
        }
        for v in 1_000_000..1_000_100u64 {
            hi.record(v);
        }
        lo.merge(&hi);
        assert_eq!(lo.count(), 200);
        assert_eq!(lo.min(), 1);
        assert_eq!(lo.max(), 1_000_099);
        assert_eq!(lo.quantile(0.0), 1);
        assert_eq!(lo.quantile(1.0), 1_000_099);
        // Median sits at the top of the low cluster, p99 in the high one.
        assert!(lo.median() <= 101, "median {}", lo.median());
        let p99 = lo.p99() as f64;
        assert!((p99 - 1_000_050.0).abs() / 1_000_050.0 < 0.02, "p99 {p99}");
        let expect_mean = (100 * 101 / 2 + (1_000_000u64..1_000_100).sum::<u64>()) as f64 / 200.0;
        assert!((lo.mean() - expect_mean).abs() < 1e-6);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        for v in [5u64, 10, 20] {
            h.record(v);
        }
        let before = (h.count(), h.min(), h.max(), h.median(), h.mean());
        h.merge(&Histogram::new());
        assert_eq!(before, (h.count(), h.min(), h.max(), h.median(), h.mean()));
        // And merging *into* an empty one adopts the other side wholesale.
        let mut empty = Histogram::new();
        let mut other = Histogram::new();
        other.record(7);
        empty.merge(&other);
        assert_eq!((empty.count(), empty.min(), empty.max()), (1, 7, 7));
    }
}
