//! # ebs-stats — measurement plumbing for the reproduction
//!
//! Everything the experiments use to turn simulator events into the rows
//! and series the paper reports:
//!
//! * [`Histogram`] — constant-memory log-bucketed latency histogram
//!   (median / p95 / p99 with ≤ ~1.6% error);
//! * [`OnlineStats`] / [`Ecdf`] — exact summary stats and CDF curves;
//! * [`BinnedSeries`] — time-binned counters for the monitoring figures;
//! * [`TextTable`] — the aligned-table renderer used by the benchmark
//!   harness to print paper-style output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod series;
mod summary;
mod table;

pub use hist::Histogram;
pub use series::BinnedSeries;
pub use summary::{Ecdf, OnlineStats};
pub use table::{f1, f2, us, TextTable};
