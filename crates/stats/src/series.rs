//! Time-binned series accumulators, for the monitoring-style figures
//! (hourly traffic over a week, per-minute IOPS over a day).

use ebs_sim::{SimDuration, SimTime};

/// Accumulates events into fixed-width time bins; each bin reports either a
/// sum (bytes, request counts) or a rate (per-second average).
#[derive(Debug, Clone)]
pub struct BinnedSeries {
    bin: SimDuration,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl BinnedSeries {
    /// A series with the given bin width.
    ///
    /// # Panics
    /// Panics if `bin` is zero.
    pub fn new(bin: SimDuration) -> Self {
        assert!(bin > SimDuration::ZERO, "bin width must be positive");
        BinnedSeries {
            bin,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    fn bin_index(&self, at: SimTime) -> usize {
        (at.as_nanos() / self.bin.as_nanos()) as usize
    }

    /// Add `value` at time `at`.
    pub fn add(&mut self, at: SimTime, value: f64) {
        let idx = self.bin_index(at);
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
            self.counts.resize(idx + 1, 0);
        }
        self.sums[idx] += value;
        self.counts[idx] += 1;
    }

    /// Count an event (value 1) at time `at`.
    pub fn tick(&mut self, at: SimTime) {
        self.add(at, 1.0);
    }

    /// Number of bins touched so far.
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// True if no bins were touched.
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// Per-bin totals.
    pub fn totals(&self) -> &[f64] {
        &self.sums
    }

    /// Per-bin event counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-bin average rate: total / bin-width-in-seconds.
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let secs = self.bin.as_secs_f64();
        self.sums.iter().map(|s| s / secs).collect()
    }

    /// Per-bin mean of added values (0 for empty bins).
    pub fn means(&self) -> Vec<f64> {
        self.sums
            .iter()
            .zip(self.counts.iter())
            .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_accumulate() {
        let mut s = BinnedSeries::new(SimDuration::from_secs(1));
        s.add(SimTime::from_millis(100), 2.0);
        s.add(SimTime::from_millis(900), 3.0);
        s.add(SimTime::from_millis(1500), 4.0);
        assert_eq!(s.totals(), &[5.0, 4.0]);
        assert_eq!(s.counts(), &[2, 1]);
    }

    #[test]
    fn rates_divide_by_bin_width() {
        let mut s = BinnedSeries::new(SimDuration::from_secs(2));
        s.add(SimTime::from_secs(0), 10.0);
        assert_eq!(s.rates_per_sec(), vec![5.0]);
    }

    #[test]
    fn means_handle_empty_bins() {
        let mut s = BinnedSeries::new(SimDuration::from_secs(1));
        s.add(SimTime::from_secs(0), 4.0);
        s.add(SimTime::from_secs(2), 6.0);
        assert_eq!(s.means(), vec![4.0, 0.0, 6.0]);
    }

    #[test]
    fn tick_counts_events() {
        let mut s = BinnedSeries::new(SimDuration::from_secs(1));
        for ms in [0u64, 10, 20, 1001] {
            s.tick(SimTime::from_millis(ms));
        }
        assert_eq!(s.counts(), &[3, 1]);
    }
}
