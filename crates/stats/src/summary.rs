//! Small online statistics and exact CDFs.

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// An exact empirical CDF built from stored samples; used for the size
/// distribution figures where sample counts are modest.
#[derive(Debug, Clone, Default)]
pub struct Ecdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Ecdf {
    /// Empty CDF.
    pub fn new() -> Self {
        Ecdf {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Add a sample.
    pub fn add(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
    }

    /// Fraction of samples ≤ `x` (0 when empty).
    pub fn fraction_le(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&s| s <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// Exact quantile by rank (0 when empty).
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * (self.samples.len() - 1) as f64).round()) as usize;
        self.samples[idx]
    }

    /// Evaluate the CDF at each of `points`, returning `(x, F(x))` pairs —
    /// the series plotted in the paper's Figure 5.
    pub fn curve(&mut self, points: &[f64]) -> Vec<(f64, f64)> {
        points.iter().map(|&x| (x, self.fraction_le(x))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!((s.stddev() - 2.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn ecdf_fractions() {
        let mut e = Ecdf::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            e.add(x);
        }
        assert_eq!(e.fraction_le(0.5), 0.0);
        assert_eq!(e.fraction_le(2.0), 0.5);
        assert_eq!(e.fraction_le(10.0), 1.0);
    }

    #[test]
    fn ecdf_quantile() {
        let mut e = Ecdf::new();
        for x in 0..101 {
            e.add(x as f64);
        }
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(1.0), 100.0);
    }

    #[test]
    fn ecdf_curve() {
        let mut e = Ecdf::new();
        for x in [4.0, 4.0, 16.0, 64.0] {
            e.add(x);
        }
        let curve = e.curve(&[4.0, 16.0, 64.0]);
        assert_eq!(curve, vec![(4.0, 0.5), (16.0, 0.75), (64.0, 1.0)]);
    }

    #[test]
    fn online_stats_single_sample() {
        let mut s = OnlineStats::new();
        s.add(3.5);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!((s.min(), s.max()), (3.5, 3.5));
    }

    #[test]
    fn ecdf_empty_and_single() {
        let mut e = Ecdf::new();
        assert_eq!(e.count(), 0);
        assert_eq!(e.fraction_le(1.0), 0.0);
        assert_eq!(e.quantile(0.5), 0.0);
        e.add(9.0);
        assert_eq!(e.count(), 1);
        assert_eq!(e.fraction_le(8.9), 0.0);
        assert_eq!(e.fraction_le(9.0), 1.0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(e.quantile(q), 9.0, "q={q}");
        }
    }
}
