//! Property tests on the measurement plumbing: quantile error bounds and
//! accumulator correctness, checked against exact computations.

use ebs_sim::{SimDuration, SimTime};
use ebs_stats::{BinnedSeries, Ecdf, Histogram, OnlineStats};
use proptest::prelude::*;

proptest! {
    /// Histogram quantiles stay within the documented ~2% relative error
    /// of the exact quantile, for arbitrary data.
    #[test]
    fn histogram_quantile_error_bound(
        mut values in proptest::collection::vec(1u64..1_000_000_000, 10..500),
        q in 0.01f64..0.99,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1] as f64;
        let got = h.quantile(q) as f64;
        // Bucketing error ~1.6% plus one-rank slack at small n.
        let lo = values[(rank - 1).saturating_sub(1)] as f64 * 0.97;
        let hi = values[(rank).min(values.len() - 1)] as f64 * 1.03;
        prop_assert!(got >= lo && got <= hi, "q={q} got={got} exact={exact} [{lo},{hi}]");
    }

    /// Histogram min/max/mean/count are exact.
    #[test]
    fn histogram_moments_exact(values in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        let mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-6);
    }

    /// Merging histograms equals recording the union.
    #[test]
    fn histogram_merge_is_union(
        a in proptest::collection::vec(0u64..1_000_000, 1..100),
        b in proptest::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hu = Histogram::new();
        for &v in &a { ha.record(v); hu.record(v); }
        for &v in &b { hb.record(v); hu.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        for q in [0.1, 0.5, 0.9] {
            prop_assert_eq!(ha.quantile(q), hu.quantile(q));
        }
    }

    /// OnlineStats matches a two-pass computation.
    #[test]
    fn online_stats_match_two_pass(values in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut s = OnlineStats::new();
        for &v in &values {
            s.add(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
    }

    /// ECDF is a valid CDF: monotone, 0-to-1, and exact at sample points.
    #[test]
    fn ecdf_is_a_cdf(values in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut e = Ecdf::new();
        for &v in &values {
            e.add(v);
        }
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(e.fraction_le(max), 1.0);
        prop_assert_eq!(e.fraction_le(-1.0), 0.0);
        let mut prev = 0.0;
        for x in [1.0, 10.0, 100.0, 1e3, 1e5, 1e6] {
            let f = e.fraction_le(x);
            prop_assert!(f >= prev);
            prev = f;
        }
    }

    /// Binned series conserve mass: sum of bin totals equals sum of inputs.
    #[test]
    fn binned_series_conserve(
        points in proptest::collection::vec((0u64..10_000_000, 0.0f64..100.0), 1..200),
    ) {
        let mut s = BinnedSeries::new(SimDuration::from_millis(1));
        let mut total = 0.0;
        for &(us, v) in &points {
            s.add(SimTime::from_micros(us), v);
            total += v;
        }
        let binned: f64 = s.totals().iter().sum();
        prop_assert!((binned - total).abs() < 1e-6 * (1.0 + total));
        let events: u64 = s.counts().iter().sum();
        prop_assert_eq!(events, points.len() as u64);
    }
}
