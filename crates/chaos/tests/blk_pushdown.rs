//! Chaos tier for the blk pushdown envelope: seeded fault schedules with
//! the virtio-blk frontend mounted and filtered range scans in flight.
//!
//! The claims under test: (1) remote pushdown survives loss-class
//! fabric faults via the frontend's RTO retransmit (which re-hashes the
//! ECMP path), so every accepted request completes; (2) the descriptor
//! ring conserves its slots at quiesce; (3) arming the envelope is a
//! plain-config change — schedules without it render byte-identically to
//! what older seeds produced, and armed runs replay deterministically.

use ebs_cc::CcAlgo;
use ebs_chaos::{run_schedule, BlkChaosConfig, ChaosConfig, FaultWeights, Schedule};
use ebs_stack::Variant;
use ebs_wire::PushdownPlacement;

/// A smoke envelope with only loss-class fabric faults (random loss +
/// blackhole) so any completion is owed to the pushdown retransmit
/// path, not to fault classes that never drop packets.
fn lossy_blk_cfg(placement: PushdownPlacement) -> ChaosConfig {
    let mut cfg = ChaosConfig::smoke(Variant::Solar);
    cfg.cc = CcAlgo::Hpcc;
    cfg.weights = FaultWeights {
        fail_stop: 0,
        reboot: 0,
        blackhole: 1,
        random_loss: 1,
        qos_throttle: 0,
        storage_slowdown: 0,
        pcie_stall: 0,
        bit_flip: 0,
    };
    cfg.min_faults = 1;
    cfg.max_faults = 3;
    cfg.blk = Some(BlkChaosConfig {
        placement,
        requests: 16,
        blocks: 64,
    });
    cfg
}

#[test]
fn pushdown_survives_loss_faults_via_retransmit() {
    let cfg = lossy_blk_cfg(PushdownPlacement::StorageNode);
    let mut total_retx = 0u64;
    for seed in 0..12u64 {
        let schedule = Schedule::generate(seed, &cfg);
        let outcome = run_schedule(&schedule);
        assert!(
            outcome.ok(),
            "seed {seed} violated: {:?}",
            outcome.violations
        );
        let blk = outcome.blk.expect("armed envelope reports counters");
        assert_eq!(blk.accepted, 16, "seed {seed}");
        assert_eq!(blk.completed, 16, "seed {seed}");
        assert_eq!(blk.crc_failures, 0, "seed {seed}");
        total_retx += blk.retransmits;
    }
    // Loss faults overlap the pushdown window in at least one of the
    // seeds, so the recovery story is exercised, not vacuous.
    assert!(
        total_retx > 0,
        "no pushdown retransmit across any seed — faults never hit the flows"
    );
}

#[test]
fn client_and_dpu_placements_hold_the_same_oracles() {
    for placement in [PushdownPlacement::Client, PushdownPlacement::Dpu] {
        let cfg = lossy_blk_cfg(placement);
        let schedule = Schedule::generate(3, &cfg);
        let outcome = run_schedule(&schedule);
        assert!(
            outcome.ok(),
            "{} violated: {:?}",
            placement.label(),
            outcome.violations
        );
        let blk = outcome.blk.expect("armed envelope reports counters");
        assert_eq!(blk.accepted, blk.completed);
    }
}

#[test]
fn armed_runs_replay_byte_identically() {
    let cfg = lossy_blk_cfg(PushdownPlacement::StorageNode);
    let schedule = Schedule::generate(7, &cfg);
    let a = run_schedule(&schedule);
    let b = run_schedule(&schedule);
    assert_eq!(a.verdicts_json(), b.verdicts_json());
    assert_eq!(a.metrics_json, b.metrics_json);
    assert!(a.verdicts_json().contains("\"blk\":{"));
}

#[test]
fn unarmed_schedules_render_without_a_blk_section() {
    let cfg = ChaosConfig::smoke(Variant::Solar);
    let schedule = Schedule::generate(11, &cfg);
    assert!(!schedule.to_json().contains("\"blk\""));
    let outcome = run_schedule(&schedule);
    assert!(outcome.blk.is_none());
    assert!(!outcome.verdicts_json().contains("\"blk\""));
}
