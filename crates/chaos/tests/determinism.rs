//! Seed-replay determinism: running the same seed twice must reproduce
//! the schedule, the verdicts and the observability snapshot
//! byte-for-byte. This is the property the whole subsystem leans on —
//! `--replay <seed>` is only a debugger if it replays *exactly*.

use ebs_chaos::{run_schedule, ChaosConfig, Schedule};
use ebs_stack::Variant;

#[test]
fn same_seed_replays_bit_identically() {
    for variant in [Variant::Luna, Variant::Solar] {
        let cfg = ChaosConfig::smoke(variant);
        for seed in [0u64, 3, 11, 42, 0xEB5] {
            let s1 = Schedule::generate(seed, &cfg);
            let s2 = Schedule::generate(seed, &cfg);
            assert_eq!(s1.to_json(), s2.to_json(), "schedule diverged, seed {seed}");

            let o1 = run_schedule(&s1);
            let o2 = run_schedule(&s2);
            assert_eq!(
                o1.verdicts_json(),
                o2.verdicts_json(),
                "verdicts diverged, seed {seed} ({})",
                variant.label()
            );
            assert_eq!(
                o1.metrics_json,
                o2.metrics_json,
                "obs metrics snapshot diverged, seed {seed} ({})",
                variant.label()
            );
        }
    }
}

#[test]
fn soak_envelope_is_deterministic_too() {
    let cfg = ChaosConfig::soak(Variant::Solar);
    let s1 = Schedule::generate(7, &cfg);
    let s2 = Schedule::generate(7, &cfg);
    assert_eq!(s1.to_json(), s2.to_json());
    let o1 = run_schedule(&s1);
    let o2 = run_schedule(&s2);
    assert_eq!(o1.verdicts_json(), o2.verdicts_json());
    assert_eq!(o1.metrics_json, o2.metrics_json);
}
