//! Seed-replay determinism: running the same seed twice must reproduce
//! the schedule, the verdicts and the observability snapshot
//! byte-for-byte. This is the property the whole subsystem leans on —
//! `--replay <seed>` is only a debugger if it replays *exactly*.

use ebs_chaos::{run_schedule, run_schedule_sharded, ChaosConfig, Schedule};
use ebs_stack::Variant;

#[test]
fn same_seed_replays_bit_identically() {
    for variant in [Variant::Luna, Variant::Solar] {
        let cfg = ChaosConfig::smoke(variant);
        for seed in [0u64, 3, 11, 42, 0xEB5] {
            let s1 = Schedule::generate(seed, &cfg);
            let s2 = Schedule::generate(seed, &cfg);
            assert_eq!(s1.to_json(), s2.to_json(), "schedule diverged, seed {seed}");

            let o1 = run_schedule(&s1);
            let o2 = run_schedule(&s2);
            assert_eq!(
                o1.verdicts_json(),
                o2.verdicts_json(),
                "verdicts diverged, seed {seed} ({})",
                variant.label()
            );
            assert_eq!(
                o1.metrics_json,
                o2.metrics_json,
                "obs metrics snapshot diverged, seed {seed} ({})",
                variant.label()
            );
        }
    }
}

/// The sharded engine is a drop-in replay target: the same chaos seed
/// replayed through a sharded fleet must be byte-identical whatever the
/// thread count, and replaying twice must reproduce the outcome exactly
/// — the `--replay` contract extended to the fleet engine. The smoke
/// envelope has 2+2 servers, so 2 shards is the deepest non-degenerate
/// split (every shard keeps a compute and a storage).
#[test]
fn chaos_seed_replays_through_the_sharded_engine() {
    for variant in [Variant::Luna, Variant::Solar] {
        let cfg = ChaosConfig::smoke(variant);
        for seed in [3u64, 42] {
            let sched = Schedule::generate(seed, &cfg);
            let serial = run_schedule_sharded(&sched, 2, 1);
            let again = run_schedule_sharded(&sched, 2, 1);
            assert_eq!(
                serial.verdicts_json(),
                again.verdicts_json(),
                "sharded replay diverged, seed {seed} ({})",
                variant.label()
            );
            assert_eq!(serial.metrics_json, again.metrics_json);
            let threaded = run_schedule_sharded(&sched, 2, 2);
            assert_eq!(
                serial.verdicts_json(),
                threaded.verdicts_json(),
                "2-thread sharded replay diverged, seed {seed} ({})",
                variant.label()
            );
            assert_eq!(
                serial.metrics_json, threaded.metrics_json,
                "2-thread fleet digest diverged, seed {seed}"
            );
        }
    }
}

#[test]
fn soak_envelope_is_deterministic_too() {
    let cfg = ChaosConfig::soak(Variant::Solar);
    let s1 = Schedule::generate(7, &cfg);
    let s2 = Schedule::generate(7, &cfg);
    assert_eq!(s1.to_json(), s2.to_json());
    let o1 = run_schedule(&s1);
    let o2 = run_schedule(&s2);
    assert_eq!(o1.verdicts_json(), o2.verdicts_json());
    assert_eq!(o1.metrics_json, o2.metrics_json);
}
