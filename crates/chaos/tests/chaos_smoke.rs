//! The `chaos_smoke` tier: sweep seeded schedules from the smoke
//! envelope over both stacks and require every invariant oracle to hold.
//!
//! 32 seeds x 2 variants = 64 schedules (the CI floor). Schedules are
//! sharded across threads — runs are independent, so parallelism cannot
//! perturb verdicts.

use ebs_chaos::{run_schedule, ChaosConfig, Schedule};
use ebs_stack::Variant;

const SEEDS_PER_VARIANT: u64 = 32;
const SHARDS: u64 = 4;

fn sweep(variant: Variant) {
    let cfg = ChaosConfig::smoke(variant);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..SHARDS)
            .map(|shard| {
                let cfg = &cfg;
                s.spawn(move || {
                    let mut failures = Vec::new();
                    let mut seed = shard;
                    while seed < SEEDS_PER_VARIANT {
                        let schedule = Schedule::generate(seed, cfg);
                        let outcome = run_schedule(&schedule);
                        if !outcome.ok() {
                            failures.push((seed, outcome));
                        }
                        seed += SHARDS;
                    }
                    failures
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("chaos shard panicked"));
        }
        if !all.is_empty() {
            let label = cfg.variant.label();
            let mut msg = format!("{} violating schedules under {label}:\n", all.len());
            for (seed, outcome) in &all {
                msg.push_str(&format!("  seed {seed}:\n"));
                for v in &outcome.violations {
                    msg.push_str(&format!("    {}\n", v.describe()));
                }
                msg.push_str(&format!(
                    "  replay: cargo bench --bench chaos -- --replay {seed} --stack {label}\n"
                ));
            }
            panic!("{msg}");
        }
    });
}

#[test]
fn smoke_luna_recovers_from_every_schedule() {
    sweep(Variant::Luna);
}

#[test]
fn smoke_solar_recovers_from_every_schedule() {
    sweep(Variant::Solar);
}
