//! The incast-soak envelope under test: SOLAR with ECN marking on and
//! adversarial incast + microburst traffic layered over the fio
//! workload, swept per congestion controller. Two properties:
//!
//! 1. Every oracle holds — including the CC-specific pair the envelope
//!    arms (bounded queue occupancy, no livelock). The envelope's fault
//!    classes are restricted to ones that do not drop traffic outright,
//!    so a violation here indicts the controller.
//! 2. Seed replay is byte-identical per controller, through both the
//!    flat runner and the sharded fleet engine at 1 and 2 threads.

use ebs_cc::CcAlgo;
use ebs_chaos::{run_schedule, run_schedule_sharded, ChaosConfig, Schedule};

/// The controllers the nightly incast soak sweeps. `Fixed` rides along
/// as the no-control baseline: it must still avoid livelock, though its
/// queue bound only holds because the envelope's fan-in is sized to the
/// shallow-buffer cap.
const CONTROLLERS: [CcAlgo; 4] = [CcAlgo::Hpcc, CcAlgo::Swift, CcAlgo::Dcqcn, CcAlgo::Fixed];

#[test]
fn incast_envelope_holds_for_every_controller() {
    for cc in CONTROLLERS {
        let cfg = ChaosConfig::incast_soak(cc);
        for seed in [1u64, 9] {
            let schedule = Schedule::generate(seed, &cfg);
            let outcome = run_schedule(&schedule);
            assert!(
                outcome.ok(),
                "cc {} seed {seed} violated: {:?}",
                cc.name(),
                outcome
                    .violations
                    .iter()
                    .map(|v| v.describe())
                    .collect::<Vec<_>>()
            );
            assert!(
                outcome.completed > 0,
                "cc {} seed {seed}: incast run completed nothing",
                cc.name()
            );
        }
    }
}

#[test]
fn incast_seed_replays_bit_identically_per_controller() {
    for cc in CONTROLLERS {
        let cfg = ChaosConfig::incast_soak(cc);
        let s1 = Schedule::generate(5, &cfg);
        let s2 = Schedule::generate(5, &cfg);
        assert_eq!(
            s1.to_json(),
            s2.to_json(),
            "schedule diverged, {}",
            cc.name()
        );
        let o1 = run_schedule(&s1);
        let o2 = run_schedule(&s2);
        assert_eq!(
            o1.verdicts_json(),
            o2.verdicts_json(),
            "verdicts diverged under {}",
            cc.name()
        );
        assert_eq!(
            o1.metrics_json,
            o2.metrics_json,
            "obs metrics diverged under {}",
            cc.name()
        );
    }
}

/// Satellite of the determinism story: each controller's incast run
/// replays byte-identically through the sharded fleet engine, and the
/// 2-thread schedule agrees with the serial one. The 4+4 envelope
/// splits into 2 shards of 2+2.
#[test]
fn incast_replays_through_the_sharded_engine_per_controller() {
    for cc in CONTROLLERS {
        let cfg = ChaosConfig::incast_soak(cc);
        let sched = Schedule::generate(5, &cfg);
        let serial = run_schedule_sharded(&sched, 2, 1);
        let again = run_schedule_sharded(&sched, 2, 1);
        assert_eq!(
            serial.verdicts_json(),
            again.verdicts_json(),
            "sharded replay diverged under {}",
            cc.name()
        );
        assert_eq!(serial.metrics_json, again.metrics_json);
        let threaded = run_schedule_sharded(&sched, 2, 2);
        assert_eq!(
            serial.verdicts_json(),
            threaded.verdicts_json(),
            "2-thread sharded replay diverged under {}",
            cc.name()
        );
        assert_eq!(
            serial.metrics_json,
            threaded.metrics_json,
            "2-thread fleet digest diverged under {}",
            cc.name()
        );
    }
}
