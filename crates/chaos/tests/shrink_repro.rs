//! Planted-violation shrinking: a schedule known to break LUNA (a long
//! full blackhole across every ToR, Table 2 row 1's worst case) must (a)
//! actually violate, (b) shrink deterministically to a minimal repro of
//! at most 3 fault events, and (c) emit `chaos-repro-<seed>.json`.

use ebs_chaos::{run_schedule, shrink, write_repro, DeviceTier, FaultEvent, FaultKind, Schedule};
use ebs_sim::SimDuration;
use ebs_stack::Variant;

/// LUNA's kernel TCP declares a connection dead after ~20 s of
/// consecutive RTOs; a 60 s full blackhole on every ToR guarantees the
/// in-flight I/Os hang forever — the genuine Table 2 "unanswered I/O".
fn planted() -> Schedule {
    let blackhole = |device_index: usize| FaultEvent {
        at: SimDuration::from_millis(10),
        kind: FaultKind::Blackhole {
            tier: DeviceTier::Tor,
            device_index,
            fraction: 1.0,
            salt: 0,
            heal_after: SimDuration::from_secs(60),
        },
    };
    let mut faults: Vec<FaultEvent> = (0..4).map(blackhole).collect();
    // Benign riders the shrinker must strip away.
    faults.push(FaultEvent {
        at: SimDuration::from_millis(12),
        kind: FaultKind::StorageSlowdown {
            storage: 0,
            factor: 4.0,
            heal_after: SimDuration::from_millis(20),
        },
    });
    faults.push(FaultEvent {
        at: SimDuration::from_millis(14),
        kind: FaultKind::PcieStall {
            compute: 1,
            extra: SimDuration::from_micros(100),
            heal_after: SimDuration::from_millis(20),
        },
    });
    faults.push(FaultEvent {
        at: SimDuration::from_millis(8),
        kind: FaultKind::QosThrottle {
            compute: 0,
            iops: 1000,
            mbps: 800,
            heal_after: SimDuration::from_millis(20),
        },
    });
    faults.sort_by_key(|f| f.at);
    Schedule {
        seed: 0xBAD5EED,
        variant: Variant::Luna,
        n_compute: 2,
        n_storage: 2,
        fio_depth: 1,
        io_bytes: 4096,
        read_fraction: 0.5,
        horizon: SimDuration::from_millis(20),
        recovery_deadline: SimDuration::from_secs(2),
        quiesce_grace: SimDuration::from_millis(500),
        max_idle_queue: 1024,
        cc: ebs_cc::CcAlgo::Hpcc,
        ecn: false,
        incast: None,
        blk: None,
        faults,
    }
}

#[test]
fn planted_blackhole_shrinks_to_minimal_repro() {
    let schedule = planted();
    assert_eq!(schedule.faults.len(), 7);

    let first = run_schedule(&schedule);
    assert!(
        !first.ok(),
        "planted schedule should violate (LUNA hangs under a 60 s ToR blackhole)"
    );
    assert!(
        first
            .violations
            .iter()
            .any(|v| matches!(v.kind(), "io_lost" | "recovery_deadline")),
        "expected a lost or late I/O, got: {:?}",
        first.violations
    );

    let shrunk = shrink(&schedule).expect("violating schedule must shrink");
    assert!(
        shrunk.minimal.faults.len() <= 3,
        "minimal repro has {} fault events (> 3): {}",
        shrunk.minimal.faults.len(),
        shrunk.minimal.to_json()
    );
    assert!(
        shrunk
            .minimal
            .faults
            .iter()
            .all(|f| matches!(f.kind, FaultKind::Blackhole { .. })),
        "only the blackholes can carry the violation: {}",
        shrunk.minimal.to_json()
    );
    assert!(!shrunk.outcome.ok(), "minimal repro must still violate");

    // Shrinking is deterministic: same input, same minimal schedule.
    let again = shrink(&schedule).expect("second shrink");
    assert_eq!(shrunk.minimal.to_json(), again.minimal.to_json());
    assert_eq!(shrunk.candidates_tried, again.candidates_tried);

    // And the repro artifact round-trips to disk.
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("chaos-repro-test");
    let written =
        write_repro(&dir, &shrunk.minimal, &shrunk.outcome).expect("write repro artifacts");
    assert!(written[0]
        .file_name()
        .unwrap()
        .to_string_lossy()
        .starts_with("chaos-repro-"));
    let body = std::fs::read_to_string(&written[0]).unwrap();
    assert!(body.contains("\"schedule\""));
    assert!(body.contains("\"violations_text\""));
    if ebs_obs::ENABLED {
        assert!(
            written.len() >= 2,
            "obs builds also emit the Chrome trace next to the repro"
        );
    }
}
