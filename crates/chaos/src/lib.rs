//! # ebs-chaos — deterministic chaos search over the EBS testbed
//!
//! The paper's robustness story (§4.5 sub-second multi-path failover,
//! §4.7 CRC aggregation against FPGA bit flips, Table 2's seven failure
//! scenarios) is reproduced elsewhere in this workspace by *scripted*
//! experiments. This crate searches the fault space instead,
//! FoundationDB-style: because the whole simulator is byte-deterministic,
//! a single `u64` seed fully reproduces any run — schedule, verdicts,
//! journal and metrics included.
//!
//! The pieces:
//!
//! * [`ChaosConfig`] + [`Schedule`] — a seeded **schedule generator**
//!   composing timed fault events from every injector the stack owns:
//!   fabric fail-stop / reboot / blackhole / random loss per device tier
//!   (`ebs-net`), DPU bit flips and PCIe stalls (`ebs-dpu`), SA QoS
//!   throttles (`ebs-sa`) and storage slowdowns (`ebs-storage`). See
//!   `docs/FAILURES.md` at the repository root for the full fault
//!   catalogue with paper cross-references.
//! * [`run_schedule`] — drives a schedule through an
//!   [`ebs_stack::Testbed`] and checks the **invariant oracles**: no I/O
//!   lost or duplicated, submit/complete counter conservation (QoS table
//!   vs traces vs obs journal spans), every I/O completes within a
//!   configurable recovery deadline once faults heal (Table 2's
//!   "unanswered ≥ 1 s" predicate generalized), event-queue quiescence
//!   after drain, and no corruption admitted undetected past the CRC
//!   aggregation check.
//! * [`shrink`] — on violation, bisects the schedule (drop fault events,
//!   shorten fault durations, reduce workload) to a minimal reproducing
//!   schedule, deterministically.
//! * [`write_repro`] — emits `chaos-repro-<seed>.json` plus the obs
//!   Chrome trace and an `explain_slowest`-style hop diagnosis of the
//!   slowest I/O for the violating run.
//!
//! ## Tiers
//!
//! `chaos_smoke` (under `cargo test`) sweeps ≈64 seeded schedules per
//! stack in seconds; the `--bench chaos` soak runs schedules until a
//! wall budget expires and replays any seed via `-- --replay <seed>`.
//! See EXPERIMENTS.md ("Chaos soak") for the workflow.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod config;
mod oracle;
mod report;
mod runner;
mod schedule;
mod shrink;

pub use config::{BlkChaosConfig, ChaosConfig, FaultWeights, IncastConfig};
pub use oracle::Violation;
pub use report::{repro_json, write_repro};
pub use runner::{run_schedule, run_schedule_sharded, ChaosOutcome};
pub use schedule::{DeviceTier, FaultEvent, FaultKind, Schedule};
pub use shrink::{shrink, ShrinkOutcome};
