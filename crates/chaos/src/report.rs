//! Repro artifacts: everything needed to hand a violating seed to
//! another engineer (or a CI log) and have them replay it.
//!
//! [`write_repro`] drops `chaos-repro-<seed>.json` — the minimal
//! schedule, the verdicts and the hop diagnosis — plus, when the run
//! carried an obs journal, `chaos-repro-<seed>-trace.json`, a Chrome
//! trace loadable in Perfetto (see EXPERIMENTS.md, "Chaos soak").

use std::io;
use std::path::{Path, PathBuf};

use crate::runner::ChaosOutcome;
use crate::schedule::Schedule;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Canonical JSON body of a repro file: the schedule (replayable via
/// `cargo bench --bench chaos -- --replay <seed>` or
/// [`crate::run_schedule`]), the verdicts, and the slowest-I/O hop
/// diagnosis when available.
pub fn repro_json(schedule: &Schedule, outcome: &ChaosOutcome) -> String {
    let mut s = String::new();
    s.push_str("{\"schedule\":");
    s.push_str(&schedule.to_json());
    s.push_str(",\"outcome\":");
    s.push_str(&outcome.verdicts_json());
    s.push_str(",\"violations_text\":[");
    for (i, v) in outcome.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('"');
        s.push_str(&json_escape(&v.describe()));
        s.push('"');
    }
    s.push(']');
    match &outcome.diagnosis {
        Some(d) => {
            s.push_str(",\"diagnosis\":\"");
            s.push_str(&json_escape(d));
            s.push('"');
        }
        None => s.push_str(",\"diagnosis\":null"),
    }
    s.push_str(",\"metrics\":");
    if outcome.metrics_json.is_empty() {
        s.push_str("null");
    } else {
        s.push_str(&outcome.metrics_json);
    }
    s.push('}');
    s
}

/// Write `chaos-repro-<seed>.json` (and `-trace.json` when the outcome
/// captured a Chrome trace) under `dir`, creating it if needed. Returns
/// the paths written.
pub fn write_repro(
    dir: &Path,
    schedule: &Schedule,
    outcome: &ChaosOutcome,
) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let repro = dir.join(format!("chaos-repro-{}.json", schedule.seed));
    std::fs::write(&repro, repro_json(schedule, outcome))?;
    written.push(repro);
    if let Some(trace) = &outcome.trace_json {
        let path = dir.join(format!("chaos-repro-{}-trace.json", schedule.seed));
        std::fs::write(&path, trace)?;
        written.push(path);
    }
    Ok(written)
}
