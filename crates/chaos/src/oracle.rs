//! Invariant oracles: what must hold at quiesce for *any* schedule whose
//! faults all heal.
//!
//! The oracles generalize the paper's evaluation predicates: Table 2's
//! "unanswered I/O ≥ 1 s" becomes a recovery deadline measured from the
//! last heal; §4.7's "no corruption passes the CRC aggregation" becomes
//! an exact per-segment ground-truth comparison; and conservation ties
//! the SA's admission counters, the completed-I/O counters, the trace
//! table and the obs journal together so an I/O can neither vanish nor
//! double-complete without tripping at least one check.

use ebs_sim::SimTime;

/// One invariant breach. Ordered fields are nanosecond timestamps so the
/// rendering is stable across runs (replay determinism covers verdicts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A submitted I/O never completed by quiesce (lost / hung forever —
    /// the production page that wakes someone up).
    IoLost {
        /// Trace index of the I/O.
        trace: usize,
        /// Compute server that submitted it.
        compute: usize,
        /// Submission instant (ns).
        submitted_ns: u64,
    },
    /// An I/O completed, but only after its recovery deadline
    /// (`max(submission, last heal) + recovery_deadline`).
    RecoveryDeadline {
        /// Trace index of the I/O.
        trace: usize,
        /// Compute server that submitted it.
        compute: usize,
        /// Completion instant (ns).
        completed_ns: u64,
        /// The deadline it missed (ns).
        deadline_ns: u64,
    },
    /// Two counters that must agree do not: an I/O was lost or
    /// double-counted somewhere between SA admission, the trace table,
    /// completion counters and the obs journal.
    Conservation {
        /// Which conservation law broke (stable label).
        counter: &'static str,
        /// Expected value.
        expected: u64,
        /// Observed value.
        got: u64,
    },
    /// A corrupted segment passed the CRC aggregation check undetected
    /// (§4.7's disaster case).
    UndetectedCorruption {
        /// Index of the corrupted-but-accepted segment in the campaign.
        segment: u64,
    },
    /// A clean segment was flagged corrupt (false positive — would cause
    /// spurious retries/rejections in production).
    CrcFalsePositive {
        /// Index of the clean-but-flagged segment in the campaign.
        segment: u64,
    },
    /// The testbed did not drain to quiescence: I/Os still outstanding
    /// or the event queue holds more than idle housekeeping.
    NotQuiescent {
        /// I/Os still pending at quiesce.
        outstanding: u64,
        /// Sim event-queue length at quiesce.
        queue_len: u64,
        /// Configured idle bound.
        limit: u64,
    },
    /// Under the incast envelope, some fabric egress queue exceeded the
    /// bounded-occupancy limit — the congestion controller let a
    /// shallow buffer fill into drop territory.
    QueueBound {
        /// Peak egress-queue occupancy observed anywhere (bytes).
        max_queue_bytes: u64,
        /// The configured bound (bytes).
        limit: u64,
    },
    /// Under the incast envelope, traffic was submitted but nothing
    /// ever completed: the controller starved itself (window pinned at
    /// zero / mutual retransmission storm) instead of making progress.
    Livelock {
        /// I/Os submitted over the run.
        submitted: u64,
        /// I/Os completed by quiesce.
        completed: u64,
    },
}

impl Violation {
    /// Stable one-word category (JSON `kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::IoLost { .. } => "io_lost",
            Violation::RecoveryDeadline { .. } => "recovery_deadline",
            Violation::Conservation { .. } => "conservation",
            Violation::UndetectedCorruption { .. } => "undetected_corruption",
            Violation::CrcFalsePositive { .. } => "crc_false_positive",
            Violation::NotQuiescent { .. } => "not_quiescent",
            Violation::QueueBound { .. } => "queue_bound",
            Violation::Livelock { .. } => "livelock",
        }
    }

    /// Human-readable one-liner.
    pub fn describe(&self) -> String {
        match self {
            Violation::IoLost {
                trace,
                compute,
                submitted_ns,
            } => format!(
                "io #{trace} (compute {compute}) submitted at {}us never completed",
                submitted_ns / 1000
            ),
            Violation::RecoveryDeadline {
                trace,
                compute,
                completed_ns,
                deadline_ns,
            } => format!(
                "io #{trace} (compute {compute}) completed at {}us, {}us past its recovery deadline",
                completed_ns / 1000,
                (completed_ns - deadline_ns) / 1000
            ),
            Violation::Conservation {
                counter,
                expected,
                got,
            } => format!("conservation broke: {counter} expected {expected}, got {got}"),
            Violation::UndetectedCorruption { segment } => {
                format!("corrupted segment {segment} passed the CRC aggregation check")
            }
            Violation::CrcFalsePositive { segment } => {
                format!("clean segment {segment} was flagged corrupt")
            }
            Violation::NotQuiescent {
                outstanding,
                queue_len,
                limit,
            } => format!(
                "not quiescent: {outstanding} outstanding ios, queue {queue_len} > limit {limit}"
            ),
            Violation::QueueBound {
                max_queue_bytes,
                limit,
            } => format!(
                "egress queue peaked at {max_queue_bytes} bytes, above the {limit}-byte bound"
            ),
            Violation::Livelock {
                submitted,
                completed,
            } => format!("livelock: {submitted} ios submitted, only {completed} ever completed"),
        }
    }

    /// Canonical JSON rendering.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("{{\"kind\":\"{}\"", self.kind());
        match self {
            Violation::IoLost {
                trace,
                compute,
                submitted_ns,
            } => {
                let _ = write!(
                    s,
                    ",\"trace\":{trace},\"compute\":{compute},\"submitted_ns\":{submitted_ns}"
                );
            }
            Violation::RecoveryDeadline {
                trace,
                compute,
                completed_ns,
                deadline_ns,
            } => {
                let _ = write!(
                    s,
                    ",\"trace\":{trace},\"compute\":{compute},\"completed_ns\":{completed_ns},\"deadline_ns\":{deadline_ns}"
                );
            }
            Violation::Conservation {
                counter,
                expected,
                got,
            } => {
                let _ = write!(
                    s,
                    ",\"counter\":\"{counter}\",\"expected\":{expected},\"got\":{got}"
                );
            }
            Violation::UndetectedCorruption { segment }
            | Violation::CrcFalsePositive { segment } => {
                let _ = write!(s, ",\"segment\":{segment}");
            }
            Violation::NotQuiescent {
                outstanding,
                queue_len,
                limit,
            } => {
                let _ = write!(
                    s,
                    ",\"outstanding\":{outstanding},\"queue_len\":{queue_len},\"limit\":{limit}"
                );
            }
            Violation::QueueBound {
                max_queue_bytes,
                limit,
            } => {
                let _ = write!(
                    s,
                    ",\"max_queue_bytes\":{max_queue_bytes},\"limit\":{limit}"
                );
            }
            Violation::Livelock {
                submitted,
                completed,
            } => {
                let _ = write!(s, ",\"submitted\":{submitted},\"completed\":{completed}");
            }
        }
        s.push('}');
        s
    }
}

/// Check the per-I/O completion invariants over a finished run's traces.
pub(crate) fn check_traces(
    traces: &[ebs_stack::IoTrace],
    last_heal: SimTime,
    deadline: ebs_sim::SimDuration,
    out: &mut Vec<Violation>,
) {
    for (i, t) in traces.iter().enumerate() {
        match t.completed {
            None => out.push(Violation::IoLost {
                trace: i,
                compute: t.compute,
                submitted_ns: t.submitted.as_nanos(),
            }),
            Some(done) => {
                let base = t.submitted.max(last_heal);
                let dl = base + deadline;
                if done > dl {
                    out.push(Violation::RecoveryDeadline {
                        trace: i,
                        compute: t.compute,
                        completed_ns: done.as_nanos(),
                        deadline_ns: dl.as_nanos(),
                    });
                }
            }
        }
    }
}

/// Push a conservation check: `expected == got` or record a violation.
pub(crate) fn conserve(counter: &'static str, expected: u64, got: u64, out: &mut Vec<Violation>) {
    if expected != got {
        out.push(Violation::Conservation {
            counter,
            expected,
            got,
        });
    }
}
