//! Chaos-search configuration: the sampling envelope schedules are drawn
//! from. The config bounds *what can be generated*; the [`Schedule`]
//! (crate::Schedule) is the concrete draw for one seed.

use ebs_cc::CcAlgo;
use ebs_sim::SimDuration;
use ebs_stack::Variant;
use ebs_wire::PushdownPlacement;

/// Relative sampling weights per fault class. A zero weight disables the
/// class; the distribution is the normalized weight vector. All-zero
/// weights generate fault-free schedules (still useful as a conservation
/// baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWeights {
    /// Fabric device fail-stop, healed only by repair (routing converges
    /// after the fabric's default delay — tens of seconds, §4.5).
    pub fail_stop: u32,
    /// Fail-stop with fast link-down detection (a reboot/upgrade whose
    /// loss is announced): routing converges in tens of milliseconds.
    pub reboot: u32,
    /// Silent blackhole of a flow subset (broken ECMP bucket / line
    /// card) — undetected by routing, the deadly case for Luna (Table 2).
    pub blackhole: u32,
    /// Random packet loss on one device.
    pub random_loss: u32,
    /// SA QoS throttle: the disk's purchased rate collapses, then
    /// recovers (§2.2 admission control).
    pub qos_throttle: u32,
    /// Storage brown-out: the block server's service time stretches by a
    /// factor (GC storm / failing drive), then heals.
    pub storage_slowdown: u32,
    /// DPU PCIe stall: every transfer pays extra latency (credit
    /// starvation on the Fig. 10 internal interconnect), then heals.
    pub pcie_stall: u32,
    /// FPGA bit-flip campaign through the CRC pipeline (§4.7): flips must
    /// never pass the segment-aggregation check undetected.
    pub bit_flip: u32,
}

impl FaultWeights {
    /// Every class equally likely.
    pub fn uniform() -> Self {
        FaultWeights {
            fail_stop: 1,
            reboot: 1,
            blackhole: 1,
            random_loss: 1,
            qos_throttle: 1,
            storage_slowdown: 1,
            pcie_stall: 1,
            bit_flip: 1,
        }
    }

    /// Sum of all weights.
    pub fn total(&self) -> u32 {
        self.fail_stop
            + self.reboot
            + self.blackhole
            + self.random_loss
            + self.qos_throttle
            + self.storage_slowdown
            + self.pcie_stall
            + self.bit_flip
    }
}

/// The sampling envelope one seed is drawn from. `Schedule::generate`
/// reads the RNG stream `(seed, "chaos-schedule")` in a fixed order, so
/// equal `(seed, config)` pairs always produce byte-identical schedules.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Data-path variant under test.
    pub variant: Variant,
    /// Compute servers in the testbed.
    pub n_compute: usize,
    /// Storage servers in the testbed.
    pub n_storage: usize,
    /// fio queue depth is sampled from `1..=max_fio_depth`.
    pub max_fio_depth: usize,
    /// I/O sizes the workload may use (bytes, 4 KiB aligned).
    pub io_bytes_choices: Vec<u32>,
    /// Workload window: fio drives I/O from ~1 ms to `horizon`, then
    /// detaches and the testbed drains.
    pub horizon: SimDuration,
    /// Fault count is sampled from `min_faults..=max_faults`.
    pub min_faults: usize,
    /// See [`ChaosConfig::min_faults`].
    pub max_faults: usize,
    /// Earliest fault injection instant.
    pub fault_start: SimDuration,
    /// Latest fault injection instant.
    pub fault_end: SimDuration,
    /// Minimum fault duration (injection to heal).
    pub min_fault_duration: SimDuration,
    /// Maximum fault duration. Keep this well below the transports' give
    /// -up horizons (LUNA's TCP declares a connection dead after ~20 s of
    /// consecutive RTOs) if the oracles are expected to stay green.
    pub max_fault_duration: SimDuration,
    /// Per-class sampling weights.
    pub weights: FaultWeights,
    /// Every I/O must complete within this much of `max(its submission,
    /// the last heal)` — the Table 2 "unanswered ≥ 1 s" predicate
    /// generalized to "recovered within the deadline once faults heal".
    pub recovery_deadline: SimDuration,
    /// Extra drain time after the recovery deadline before quiescence is
    /// asserted.
    pub quiesce_grace: SimDuration,
    /// Upper bound on the sim event-queue length at quiescence (an idle
    /// testbed holds only periodic timer/probe events).
    pub max_idle_queue: usize,
    /// Congestion-control algorithm for the SOLAR paths (ignored by the
    /// other variants). Plain config — copied into the schedule, never
    /// sampled, so existing seeds replay unchanged.
    pub cc: CcAlgo,
    /// Enable RED/ECN marking at switch egress queues. Marking draws
    /// from its own RNG stream, so turning it on shifts no other
    /// randomness.
    pub ecn: bool,
    /// Adversarial incast/microburst traffic layered on top of the fio
    /// workload, with its own oracles (bounded queues, no livelock).
    pub incast: Option<IncastConfig>,
    /// Virtio-blk pushdown traffic layered over the fio workload, with
    /// ring-conservation oracles armed at quiesce. Plain config — copied
    /// into the schedule, never sampled, so existing seeds replay
    /// unchanged.
    pub blk: Option<BlkChaosConfig>,
}

/// The blk-frontend stress envelope: a pushdown-enabled virtio-blk
/// device mounted on compute 0, driving deterministic filtered range
/// scans across the workload window while the sampled faults land on the
/// fabric underneath. Remote placements must survive loss/blackhole via
/// the frontend's RTO retransmit (which re-hashes the ECMP path), so the
/// oracles demand every accepted request completes and the descriptor
/// ring conserves its slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlkChaosConfig {
    /// Where the pushdown executes (client / storage node / DPU).
    pub placement: PushdownPlacement,
    /// Pushdown requests issued, spread evenly over the workload window.
    pub requests: u32,
    /// Blocks scanned per request.
    pub blocks: u32,
}

impl Default for BlkChaosConfig {
    fn default() -> Self {
        BlkChaosConfig {
            placement: PushdownPlacement::StorageNode,
            requests: 16,
            blocks: 64,
        }
    }
}

/// The incast/microburst stress envelope: deterministic adversarial
/// traffic (from [`ebs_workload::adversarial`]) injected alongside the
/// sampled faults, plus the CC-specific oracle bounds it must satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncastConfig {
    /// Length of the adversarial pattern window.
    pub duration: SimDuration,
    /// Bounded-queue oracle: peak egress occupancy anywhere in the
    /// fabric must stay at or below this (shallow buffers are 512 KiB;
    /// a controller that fills them to the cap is in drop territory).
    pub max_queue_bytes: usize,
}

impl Default for IncastConfig {
    fn default() -> Self {
        IncastConfig {
            duration: SimDuration::from_millis(4),
            max_queue_bytes: 448 * 1024,
        }
    }
}

impl ChaosConfig {
    /// The `chaos_smoke` tier envelope: a 2×2 testbed, ≤3 short faults
    /// inside a 60 ms workload window, 5 s recovery deadline. Runs in
    /// milliseconds per seed; all oracles stay green on the current
    /// stacks.
    pub fn smoke(variant: Variant) -> Self {
        ChaosConfig {
            variant,
            n_compute: 2,
            n_storage: 2,
            max_fio_depth: 2,
            io_bytes_choices: vec![4096, 16384],
            horizon: SimDuration::from_millis(60),
            min_faults: 1,
            max_faults: 3,
            fault_start: SimDuration::from_millis(5),
            fault_end: SimDuration::from_millis(40),
            min_fault_duration: SimDuration::from_millis(10),
            max_fault_duration: SimDuration::from_millis(50),
            weights: FaultWeights::uniform(),
            recovery_deadline: SimDuration::from_secs(5),
            quiesce_grace: SimDuration::from_secs(1),
            max_idle_queue: 1024,
            cc: CcAlgo::Hpcc,
            ecn: false,
            incast: None,
            blk: None,
        }
    }

    /// The nightly soak envelope: a larger testbed, more and longer
    /// faults, deeper queues. Each seed costs a noticeable fraction of a
    /// second; the soak loops seeds until its wall budget expires.
    pub fn soak(variant: Variant) -> Self {
        ChaosConfig {
            n_compute: 4,
            n_storage: 3,
            max_fio_depth: 4,
            io_bytes_choices: vec![4096, 16384, 65536],
            horizon: SimDuration::from_millis(150),
            min_faults: 2,
            max_faults: 6,
            fault_start: SimDuration::from_millis(5),
            fault_end: SimDuration::from_millis(120),
            min_fault_duration: SimDuration::from_millis(10),
            max_fault_duration: SimDuration::from_millis(120),
            ..ChaosConfig::smoke(variant)
        }
    }

    /// The nightly incast-soak envelope: SOLAR under `cc` with ECN
    /// marking on, adversarial incast + microburst traffic layered over
    /// a lighter fault schedule, and the CC oracles (bounded queues, no
    /// livelock) armed. Faults are restricted to classes that do not
    /// drop or starve traffic outright (QoS, storage brown-out, PCIe
    /// stall) so a violation indicts the congestion controller, not the
    /// fault.
    pub fn incast_soak(cc: CcAlgo) -> Self {
        ChaosConfig {
            cc,
            ecn: true,
            incast: Some(IncastConfig::default()),
            n_compute: 4,
            n_storage: 4,
            max_fio_depth: 2,
            min_faults: 0,
            max_faults: 2,
            weights: FaultWeights {
                fail_stop: 0,
                reboot: 0,
                blackhole: 0,
                random_loss: 0,
                qos_throttle: 1,
                storage_slowdown: 1,
                pcie_stall: 1,
                bit_flip: 1,
            },
            ..ChaosConfig::smoke(Variant::Solar)
        }
    }
}
