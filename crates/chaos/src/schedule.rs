//! Seeded fault schedules: the concrete, replayable draw from a
//! [`ChaosConfig`] envelope.
//!
//! A [`Schedule`] is plain data — workload shape plus a time-sorted list
//! of [`FaultEvent`]s — so the shrinker can edit it structurally and the
//! runner can replay it bit-identically. Generation reads the RNG stream
//! `(seed, "chaos-schedule")` in one fixed order; nothing about the
//! testbed is consulted, so a schedule can be generated (and printed)
//! without running anything.

use ebs_cc::CcAlgo;
use ebs_sim::{rng, Bandwidth, SimDuration};
use ebs_stack::Variant;
use rand::Rng;

use crate::config::{BlkChaosConfig, ChaosConfig, IncastConfig};

/// Fabric tier a net-level fault lands on. Server devices are never
/// targeted directly — the paper's Table 2 failure model is switch-level
/// (ToR pair / spine), and killing a server's only NIC tests the fabric,
/// not the stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceTier {
    /// Top-of-rack switch (modeled as the dual-homed pair's member).
    Tor,
    /// Pod spine (aggregation) switch.
    Spine,
}

impl DeviceTier {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            DeviceTier::Tor => "tor",
            DeviceTier::Spine => "spine",
        }
    }
}

/// One injectable fault, with its heal baked in: generated schedules
/// always recover (zero-violation runs are the expected outcome; the
/// oracles then certify the recovery). `docs/FAILURES.md` catalogues the
/// underlying injectors.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Fabric fail-stop; routing converges at the fabric's default pace.
    FailStop {
        /// Device tier.
        tier: DeviceTier,
        /// Index into the tier's device list (mod its length).
        device_index: usize,
        /// Injection-to-heal duration.
        heal_after: SimDuration,
    },
    /// Fail-stop with fast link-down detection (reboot/upgrade): routing
    /// converges in 50 ms.
    Reboot {
        /// Device tier.
        tier: DeviceTier,
        /// Index into the tier's device list (mod its length).
        device_index: usize,
        /// Injection-to-heal duration.
        heal_after: SimDuration,
    },
    /// Silent partial blackhole (broken ECMP bucket / line card).
    Blackhole {
        /// Device tier.
        tier: DeviceTier,
        /// Index into the tier's device list (mod its length).
        device_index: usize,
        /// Fraction of flows dropped (0..1].
        fraction: f64,
        /// Salt mixing which flows are hit.
        salt: u64,
        /// Injection-to-heal duration.
        heal_after: SimDuration,
    },
    /// Uniform random packet loss on one device.
    RandomLoss {
        /// Device tier.
        tier: DeviceTier,
        /// Index into the tier's device list (mod its length).
        device_index: usize,
        /// Per-packet drop probability.
        rate: f64,
        /// Injection-to-heal duration.
        heal_after: SimDuration,
    },
    /// SA QoS throttle on one compute server's virtual disk; heals back
    /// to an unlimited spec.
    QosThrottle {
        /// Compute server index (mod the testbed's compute count).
        compute: usize,
        /// Throttled IOPS budget.
        iops: u64,
        /// Throttled bandwidth budget (megabits per second).
        mbps: u64,
        /// Injection-to-heal duration.
        heal_after: SimDuration,
    },
    /// Storage brown-out: the block server's service time stretches by
    /// `factor`, then heals to 1.0.
    StorageSlowdown {
        /// Storage server index (mod the testbed's storage count).
        storage: usize,
        /// Service-time multiplier while degraded (> 1.0).
        factor: f64,
        /// Injection-to-heal duration.
        heal_after: SimDuration,
    },
    /// DPU PCIe stall on one compute server: every transfer pays `extra`,
    /// then heals to zero.
    PcieStall {
        /// Compute server index (mod the testbed's compute count).
        compute: usize,
        /// Extra latency per PCIe transfer while stalled.
        extra: SimDuration,
        /// Injection-to-heal duration.
        heal_after: SimDuration,
    },
    /// FPGA bit-flip campaign (§4.7): `blocks` blocks flow through the
    /// CRC pipeline with a flip injector at `rate`; the corruption oracle
    /// requires the segment-aggregation check to flag every corrupted
    /// segment. Runs as a side campaign (it perturbs data, not timing).
    BitFlip {
        /// Per-block flip probability.
        rate: f64,
        /// Blocks pushed through the pipeline.
        blocks: usize,
    },
}

impl FaultKind {
    /// Injection-to-heal duration (zero for the instantaneous bit-flip
    /// campaign).
    pub fn heal_after(&self) -> SimDuration {
        match self {
            FaultKind::FailStop { heal_after, .. }
            | FaultKind::Reboot { heal_after, .. }
            | FaultKind::Blackhole { heal_after, .. }
            | FaultKind::RandomLoss { heal_after, .. }
            | FaultKind::QosThrottle { heal_after, .. }
            | FaultKind::StorageSlowdown { heal_after, .. }
            | FaultKind::PcieStall { heal_after, .. } => *heal_after,
            FaultKind::BitFlip { .. } => SimDuration::ZERO,
        }
    }

    /// Short class label (stable; used in JSON and logs).
    pub fn class(&self) -> &'static str {
        match self {
            FaultKind::FailStop { .. } => "fail_stop",
            FaultKind::Reboot { .. } => "reboot",
            FaultKind::Blackhole { .. } => "blackhole",
            FaultKind::RandomLoss { .. } => "random_loss",
            FaultKind::QosThrottle { .. } => "qos_throttle",
            FaultKind::StorageSlowdown { .. } => "storage_slowdown",
            FaultKind::PcieStall { .. } => "pcie_stall",
            FaultKind::BitFlip { .. } => "bit_flip",
        }
    }

    /// Set the heal duration (shrinker support; no-op for bit flips).
    pub(crate) fn set_heal_after(&mut self, d: SimDuration) {
        match self {
            FaultKind::FailStop { heal_after, .. }
            | FaultKind::Reboot { heal_after, .. }
            | FaultKind::Blackhole { heal_after, .. }
            | FaultKind::RandomLoss { heal_after, .. }
            | FaultKind::QosThrottle { heal_after, .. }
            | FaultKind::StorageSlowdown { heal_after, .. }
            | FaultKind::PcieStall { heal_after, .. } => *heal_after = d,
            FaultKind::BitFlip { .. } => {}
        }
    }
}

/// One timed fault in a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Injection instant, as an offset from simulation start.
    pub at: SimDuration,
    /// What happens.
    pub kind: FaultKind,
}

/// A concrete, replayable chaos run: workload shape + fault timeline.
/// Equal seeds (under equal configs) generate byte-identical schedules —
/// compare [`Schedule::to_json`] outputs to prove it.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// The generating seed (also the testbed seed).
    pub seed: u64,
    /// Data-path variant under test.
    pub variant: Variant,
    /// Compute servers.
    pub n_compute: usize,
    /// Storage servers.
    pub n_storage: usize,
    /// fio queue depth per compute server.
    pub fio_depth: usize,
    /// I/O size in bytes.
    pub io_bytes: u32,
    /// Read fraction of the workload.
    pub read_fraction: f64,
    /// Workload window (fio detaches at this instant).
    pub horizon: SimDuration,
    /// Recovery deadline per I/O, measured from `max(submission, last
    /// heal)`.
    pub recovery_deadline: SimDuration,
    /// Extra drain time before quiescence is asserted.
    pub quiesce_grace: SimDuration,
    /// Event-queue bound at quiescence.
    pub max_idle_queue: usize,
    /// SOLAR congestion-control algorithm (config-copied, never
    /// sampled — existing seeds replay unchanged).
    pub cc: CcAlgo,
    /// RED/ECN marking at switch egress queues.
    pub ecn: bool,
    /// Adversarial incast/microburst envelope, when armed.
    pub incast: Option<IncastConfig>,
    /// Virtio-blk pushdown envelope, when armed (config-copied, never
    /// sampled — existing seeds replay unchanged).
    pub blk: Option<BlkChaosConfig>,
    /// The fault timeline, sorted by injection instant.
    pub faults: Vec<FaultEvent>,
}

impl Schedule {
    /// Draw the schedule for `seed` from `cfg`. Pure: consumes only the
    /// RNG stream `(seed, "chaos-schedule")`, in a fixed order.
    pub fn generate(seed: u64, cfg: &ChaosConfig) -> Schedule {
        let mut r = rng::stream(seed, "chaos-schedule");
        let fio_depth = r.gen_range(1..=cfg.max_fio_depth.max(1));
        let io_bytes = if cfg.io_bytes_choices.is_empty() {
            4096
        } else {
            cfg.io_bytes_choices[r.gen_range(0..cfg.io_bytes_choices.len())]
        };
        let read_fraction = f64::from(r.gen_range(0..=4u32)) * 0.25;
        let n_faults = r.gen_range(cfg.min_faults..=cfg.max_faults.max(cfg.min_faults));
        let mut faults: Vec<FaultEvent> = (0..n_faults)
            .filter_map(|_| sample_fault(&mut r, cfg))
            .collect();
        faults.sort_by_key(|f| f.at);
        Schedule {
            seed,
            variant: cfg.variant,
            n_compute: cfg.n_compute,
            n_storage: cfg.n_storage,
            fio_depth,
            io_bytes,
            read_fraction,
            horizon: cfg.horizon,
            recovery_deadline: cfg.recovery_deadline,
            quiesce_grace: cfg.quiesce_grace,
            max_idle_queue: cfg.max_idle_queue,
            cc: cfg.cc,
            ecn: cfg.ecn,
            incast: cfg.incast,
            blk: cfg.blk,
            faults,
        }
    }

    /// Instant of the last heal across the timeline (zero with no
    /// healing faults): the recovery-deadline oracle measures from here.
    pub fn last_heal(&self) -> SimDuration {
        self.faults
            .iter()
            .map(|f| f.at + f.kind.heal_after())
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// When the run drains and the oracles fire.
    pub fn quiesce_at(&self) -> SimDuration {
        self.horizon.max(self.last_heal()) + self.recovery_deadline + self.quiesce_grace
    }

    /// Canonical JSON rendering (schedules with equal content render
    /// byte-identically; the replay/determinism tests compare these).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"seed\":{},\"variant\":\"{}\",\"n_compute\":{},\"n_storage\":{},\
             \"fio_depth\":{},\"io_bytes\":{},\"read_fraction\":{},\
             \"horizon_ns\":{},\"recovery_deadline_ns\":{},\"quiesce_grace_ns\":{},\
             \"cc\":\"{}\",\"ecn\":{},",
            self.seed,
            self.variant.label(),
            self.n_compute,
            self.n_storage,
            self.fio_depth,
            self.io_bytes,
            self.read_fraction,
            self.horizon.as_nanos(),
            self.recovery_deadline.as_nanos(),
            self.quiesce_grace.as_nanos(),
            self.cc.name(),
            self.ecn,
        );
        if let Some(inc) = &self.incast {
            let _ = write!(
                s,
                "\"incast\":{{\"duration_ns\":{},\"max_queue_bytes\":{}}},",
                inc.duration.as_nanos(),
                inc.max_queue_bytes
            );
        }
        if let Some(b) = &self.blk {
            let _ = write!(
                s,
                "\"blk\":{{\"placement\":\"{}\",\"requests\":{},\"blocks\":{}}},",
                b.placement.label(),
                b.requests,
                b.blocks
            );
        }
        s.push_str("\"faults\":[");
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"at_ns\":{},\"class\":\"{}\",\"heal_after_ns\":{}",
                f.at.as_nanos(),
                f.kind.class(),
                f.kind.heal_after().as_nanos()
            );
            match &f.kind {
                FaultKind::FailStop {
                    tier, device_index, ..
                }
                | FaultKind::Reboot {
                    tier, device_index, ..
                } => {
                    let _ = write!(
                        s,
                        ",\"tier\":\"{}\",\"device_index\":{}",
                        tier.label(),
                        device_index
                    );
                }
                FaultKind::Blackhole {
                    tier,
                    device_index,
                    fraction,
                    salt,
                    ..
                } => {
                    let _ = write!(
                        s,
                        ",\"tier\":\"{}\",\"device_index\":{},\"fraction\":{},\"salt\":{}",
                        tier.label(),
                        device_index,
                        fraction,
                        salt
                    );
                }
                FaultKind::RandomLoss {
                    tier,
                    device_index,
                    rate,
                    ..
                } => {
                    let _ = write!(
                        s,
                        ",\"tier\":\"{}\",\"device_index\":{},\"rate\":{}",
                        tier.label(),
                        device_index,
                        rate
                    );
                }
                FaultKind::QosThrottle {
                    compute,
                    iops,
                    mbps,
                    ..
                } => {
                    let _ = write!(
                        s,
                        ",\"compute\":{},\"iops\":{},\"mbps\":{}",
                        compute, iops, mbps
                    );
                }
                FaultKind::StorageSlowdown {
                    storage, factor, ..
                } => {
                    let _ = write!(s, ",\"storage\":{},\"factor\":{}", storage, factor);
                }
                FaultKind::PcieStall { compute, extra, .. } => {
                    let _ = write!(
                        s,
                        ",\"compute\":{},\"extra_ns\":{}",
                        compute,
                        extra.as_nanos()
                    );
                }
                FaultKind::BitFlip { rate, blocks } => {
                    let _ = write!(s, ",\"rate\":{},\"blocks\":{}", rate, blocks);
                }
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

/// The QoS spec a [`FaultKind::QosThrottle`] installs.
pub(crate) fn throttle_spec(iops: u64, mbps: u64) -> ebs_sa::QosSpec {
    ebs_sa::QosSpec {
        iops,
        bandwidth: Bandwidth::from_mbps(mbps),
        burst_secs: 0.1,
    }
}

fn sample_duration(r: &mut rand::rngs::SmallRng, lo: SimDuration, hi: SimDuration) -> SimDuration {
    let lo_ns = lo.as_nanos();
    let hi_ns = hi.as_nanos().max(lo_ns + 1);
    SimDuration::from_nanos(r.gen_range(lo_ns..hi_ns))
}

fn sample_fault(r: &mut rand::rngs::SmallRng, cfg: &ChaosConfig) -> Option<FaultEvent> {
    let total = cfg.weights.total();
    if total == 0 {
        return None;
    }
    let at = sample_duration(r, cfg.fault_start, cfg.fault_end);
    let heal = sample_duration(r, cfg.min_fault_duration, cfg.max_fault_duration);
    let tier = if r.gen::<bool>() {
        DeviceTier::Tor
    } else {
        DeviceTier::Spine
    };
    let device_index = r.gen_range(0..64);
    let pick = r.gen_range(0..total);
    let kind = sample_kind(r, cfg, pick, tier, device_index, heal);
    Some(FaultEvent { at, kind })
}

/// Weighted-pick dispatch: walk the cumulative weight vector and sample
/// the chosen class's parameters.
fn sample_kind(
    r: &mut rand::rngs::SmallRng,
    cfg: &ChaosConfig,
    mut pick: u32,
    tier: DeviceTier,
    device_index: usize,
    heal: SimDuration,
) -> FaultKind {
    let w = cfg.weights;
    if pick < w.fail_stop {
        return FaultKind::FailStop {
            tier,
            device_index,
            heal_after: heal,
        };
    }
    pick -= w.fail_stop;
    if pick < w.reboot {
        return FaultKind::Reboot {
            tier,
            device_index,
            heal_after: heal,
        };
    }
    pick -= w.reboot;
    if pick < w.blackhole {
        return FaultKind::Blackhole {
            tier,
            device_index,
            fraction: [0.25, 0.5, 1.0][r.gen_range(0..3)],
            salt: r.gen::<u64>(),
            heal_after: heal,
        };
    }
    pick -= w.blackhole;
    if pick < w.random_loss {
        return FaultKind::RandomLoss {
            tier,
            device_index,
            rate: 0.01 + r.gen::<f64>() * 0.24,
            heal_after: heal,
        };
    }
    pick -= w.random_loss;
    if pick < w.qos_throttle {
        return FaultKind::QosThrottle {
            compute: r.gen_range(0..cfg.n_compute.max(1)),
            iops: r.gen_range(500..4000),
            mbps: r.gen_range(400..3200),
            heal_after: heal,
        };
    }
    pick -= w.qos_throttle;
    if pick < w.storage_slowdown {
        return FaultKind::StorageSlowdown {
            storage: r.gen_range(0..cfg.n_storage.max(1)),
            factor: 2.0 + r.gen::<f64>() * 14.0,
            heal_after: heal,
        };
    }
    pick -= w.storage_slowdown;
    if pick < w.pcie_stall {
        return FaultKind::PcieStall {
            compute: r.gen_range(0..cfg.n_compute.max(1)),
            extra: sample_duration(
                r,
                SimDuration::from_micros(20),
                SimDuration::from_micros(500),
            ),
            heal_after: heal,
        };
    }
    FaultKind::BitFlip {
        rate: 1e-4 * 10f64.powf(r.gen::<f64>()),
        blocks: r.gen_range(256..1024),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FaultWeights;

    #[test]
    fn same_seed_same_schedule() {
        let cfg = ChaosConfig::smoke(Variant::Luna);
        for seed in 0..32 {
            let a = Schedule::generate(seed, &cfg);
            let b = Schedule::generate(seed, &cfg);
            assert_eq!(a, b);
            assert_eq!(a.to_json(), b.to_json());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = ChaosConfig::smoke(Variant::Solar);
        let a = Schedule::generate(1, &cfg);
        let b = Schedule::generate(2, &cfg);
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn faults_fall_in_the_window_and_heal() {
        let cfg = ChaosConfig::smoke(Variant::Luna);
        for seed in 0..64 {
            let s = Schedule::generate(seed, &cfg);
            assert!(s.faults.len() >= cfg.min_faults);
            assert!(s.faults.len() <= cfg.max_faults);
            for f in &s.faults {
                assert!(f.at >= cfg.fault_start && f.at <= cfg.fault_end);
                if !matches!(f.kind, FaultKind::BitFlip { .. }) {
                    assert!(f.kind.heal_after() >= cfg.min_fault_duration);
                    assert!(f.kind.heal_after() <= cfg.max_fault_duration);
                }
            }
            assert!(s.quiesce_at() >= s.horizon + s.recovery_deadline);
        }
    }

    #[test]
    fn zero_weights_generate_fault_free_schedules() {
        let mut cfg = ChaosConfig::smoke(Variant::Luna);
        cfg.weights = FaultWeights {
            fail_stop: 0,
            reboot: 0,
            blackhole: 0,
            random_loss: 0,
            qos_throttle: 0,
            storage_slowdown: 0,
            pcie_stall: 0,
            bit_flip: 0,
        };
        let s = Schedule::generate(7, &cfg);
        assert!(s.faults.is_empty());
    }
}
