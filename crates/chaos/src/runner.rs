//! Drive one [`Schedule`] through a fresh [`Testbed`] and evaluate the
//! invariant oracles at quiesce.
//!
//! The runner is deterministic end to end: the testbed is seeded with
//! the schedule's seed, fault events translate to testbed events at
//! fixed instants, the workload detaches at the horizon, and the sim
//! drains until `Schedule::quiesce_at`. Everything the caller might want
//! to compare across replays (verdicts, metrics snapshot, schedule JSON)
//! is captured as canonical strings.

use bytes::Bytes;
use ebs_cc::CcAlgo;
use ebs_crc::{block_crc_raw, SegmentChecker, SegmentVerdict};
use ebs_dpu::{BitFlipInjector, CrcStage, PacketCtx, Pipeline, Stage};
use ebs_net::{DeviceId, FailureMode};
use ebs_sa::{IoKind, IoRequest, QosSpec};
use ebs_sim::{rng, SimDuration, SimTime};
use ebs_stack::blk::{BlkReq, Predicate, StorageFn};
use ebs_stack::{
    BlkCounters, BlkMountConfig, FioConfig, ShardedTestbed, ShardedTestbedConfig, Testbed,
    TestbedConfig, Variant,
};
use ebs_wire::{EbsHeader, EbsOp};
use rand::Rng;

use crate::oracle::{check_traces, conserve, Violation};
use crate::schedule::{throttle_spec, DeviceTier, FaultKind, Schedule};

/// Routing convergence used for [`FaultKind::Reboot`]: link-down is
/// announced, so the fabric reroutes in tens of milliseconds (§4.5's
/// fast case), unlike a silent fail-stop.
const REBOOT_CONVERGENCE: SimDuration = SimDuration::from_millis(50);

/// Blocks per segment in the bit-flip campaign's aggregation check (the
/// §4.7 CRC granule; small enough that a handful of flips land in
/// distinct segments).
const CAMPAIGN_SEGMENT_BLOCKS: usize = 8;

/// Everything one chaos run produced. Two runs of the same schedule are
/// byte-identical across every field (the replay tests assert this).
#[derive(Debug)]
pub struct ChaosOutcome {
    /// The generating seed.
    pub seed: u64,
    /// I/Os submitted (guest + fio) over the run.
    pub submitted: u64,
    /// I/Os completed by quiesce.
    pub completed: u64,
    /// Corrupted segments planted by the bit-flip campaign.
    pub corrupt_planted: u64,
    /// Corrupted segments the CRC aggregation check caught.
    pub corrupt_caught: u64,
    /// Invariant breaches (empty = the run certified recovery).
    pub violations: Vec<Violation>,
    /// Blk-frontend counters at quiesce, when the schedule armed the
    /// pushdown envelope (`None` otherwise, and under the fleet runner).
    pub blk: Option<BlkCounters>,
    /// Canonical metrics snapshot (empty JSON object with obs off).
    pub metrics_json: String,
    /// Chrome trace of the run, captured only for violating runs with
    /// observability on (it is large).
    pub trace_json: Option<String>,
    /// `explain_slowest`-style hop diagnosis of the slowest I/O,
    /// captured for violating runs with observability on.
    pub diagnosis: Option<String>,
}

impl ChaosOutcome {
    /// True when every oracle held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Canonical JSON rendering of the verdicts (replay-comparable).
    pub fn verdicts_json(&self) -> String {
        let mut s = format!(
            "{{\"seed\":{},\"submitted\":{},\"completed\":{},\"corrupt_planted\":{},\"corrupt_caught\":{},",
            self.seed, self.submitted, self.completed, self.corrupt_planted, self.corrupt_caught
        );
        if let Some(b) = &self.blk {
            s.push_str(&format!(
                "\"blk\":{{\"accepted\":{},\"completed\":{},\"rejected\":{},\"parts_sent\":{},\"retransmits\":{},\"dup_responses\":{},\"crc_failures\":{},\"data_bytes\":{}}},",
                b.accepted,
                b.completed,
                b.rejected,
                b.parts_sent,
                b.retransmits,
                b.dup_responses,
                b.crc_failures,
                b.data_bytes
            ));
        }
        s.push_str("\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&v.to_json());
        }
        s.push_str("]}");
        s
    }
}

/// Copy the schedule's congestion-control knobs onto the testbed config.
/// Plain config transfer — nothing here draws randomness, so schedules
/// generated before these knobs existed replay byte-identically.
fn apply_cc_knobs(cfg: &mut TestbedConfig, schedule: &Schedule) {
    cfg.solar.cc = schedule.cc;
    cfg.ecn.enabled = schedule.ecn;
    if schedule.cc == CcAlgo::Swift {
        // Swift's stock 25 µs target is a fabric-delay target; the SOLAR
        // ack path also carries SSD + server-stack time, so an end-to-end
        // delay controller needs a target above the unloaded storage RTT
        // or it pins the window at the floor (see bench::cc).
        cfg.solar.swift.target_delay = SimDuration::from_micros(250);
    }
    if cfg.variant == Variant::Rdma && schedule.ecn {
        cfg.rdma.dcqcn = Some(ebs_cc::DcqcnConfig::default());
    }
}

/// Translate one adversarial [`ebs_workload::IoEvent`] into the guest
/// I/O the testbed runners schedule. `compute` is the index the event
/// was resolved onto (shard-local under the fleet engine), which is
/// also the virtual disk the testbed provisioned for it.
fn adversarial_req(e: &ebs_workload::IoEvent, compute: usize) -> IoRequest {
    IoRequest {
        vd_id: compute as u64,
        kind: if e.write { IoKind::Write } else { IoKind::Read },
        offset: e.offset,
        len: e.bytes,
    }
}

/// The adversarial event stream for the schedule's incast envelope:
/// N:1 incast plus staggered microbursts, both deterministic pure-data
/// generators (no RNG draw anywhere).
fn incast_events(schedule: &Schedule) -> Vec<ebs_workload::IoEvent> {
    let Some(inc) = &schedule.incast else {
        return Vec::new();
    };
    let adv = ebs_workload::AdversarialConfig {
        n_compute: schedule.n_compute.max(1) as u32,
        duration_us: inc.duration.as_nanos() / 1000,
    };
    let mut evs = ebs_workload::adversarial::incast(&adv);
    evs.extend(ebs_workload::adversarial::microburst(&adv));
    evs
}

/// Layer the incast/microburst traffic over the fio workload (flat
/// runner). Events start at the same 1 ms mark fio attaches at.
fn inject_incast(tb: &mut Testbed, schedule: &Schedule, t0: SimTime) {
    let start = t0 + SimDuration::from_millis(1);
    for e in incast_events(schedule) {
        let compute = e.compute as usize % schedule.n_compute.max(1);
        tb.schedule_io(
            start + SimDuration::from_micros(e.at_us),
            compute,
            adversarial_req(&e, compute),
        );
    }
}

/// Mount the pushdown-enabled blk frontend on compute 0 and spread the
/// envelope's filtered range scans evenly across the workload window.
/// Pure config transfer plus arithmetic — no RNG draw, so arming the
/// envelope shifts no other randomness.
fn inject_blk(tb: &mut Testbed, schedule: &Schedule, t0: SimTime) {
    let Some(b) = &schedule.blk else {
        return;
    };
    if schedule.n_compute == 0 {
        return;
    }
    tb.blk_mount(0, BlkMountConfig::with_placement(b.placement))
        .expect("the default feature set always negotiates");
    // A mildly selective predicate (~1/16 of blocks pass) so remote
    // placements return a small but non-empty payload per part.
    let func = StorageFn::scan(Predicate {
        offset: 0,
        mask: 0x0F,
        value: 0x07,
    });
    let start = t0 + SimDuration::from_millis(1);
    let span_ns = schedule
        .horizon
        .as_nanos()
        .saturating_sub(SimDuration::from_millis(1).as_nanos());
    let n = b.requests.max(1);
    let step = SimDuration::from_nanos(span_ns / u64::from(n));
    // Stride the ranges across segments so consecutive requests land on
    // different block servers (vd 0 interleaves its segment mapping) and
    // some ranges straddle a segment boundary (multi-part responses).
    let blocks = b.blocks.max(1);
    let window = 8 * ebs_sa::SEGMENT_BLOCKS;
    let stride = ebs_sa::SEGMENT_BLOCKS / 2 + u64::from(blocks);
    for i in 0..n {
        let first = (u64::from(i) * stride) % window;
        tb.schedule_blk(
            start + step * u64::from(i),
            0,
            (i % 2) as usize,
            BlkReq::pushdown(0, first, blocks, func),
        );
    }
}

/// Blk-frontend oracles at quiesce: the descriptor ring conserved its
/// slots (free + held + pending == capacity, nothing stuck in flight)
/// and every accepted request completed — remote placements must have
/// recovered from any loss via the RTO retransmit path. Returns the
/// counters for the outcome when the envelope was armed.
fn blk_oracles(
    tb: &Testbed,
    schedule: &Schedule,
    violations: &mut Vec<Violation>,
) -> Option<BlkCounters> {
    schedule.blk.as_ref()?;
    let c = tb.blk_counters();
    conserve(
        "blk accepted == blk completed",
        c.accepted,
        c.completed,
        violations,
    );
    conserve(
        "blk ring conservation errors",
        0,
        tb.blk_ring_errors().len() as u64,
        violations,
    );
    let (free, cap, held) = tb.blk_ring_slots();
    conserve("blk ring descriptors held at quiesce", 0, held, violations);
    conserve("blk ring free == capacity", cap, free, violations);
    Some(c)
}

fn resolve_device(tb: &Testbed, tier: DeviceTier, index: usize) -> Option<DeviceId> {
    let kind = match tier {
        DeviceTier::Tor => ebs_net::DeviceKind::Tor,
        DeviceTier::Spine => ebs_net::DeviceKind::Spine,
    };
    let devices = tb.fabric().topology().devices_of_kind(kind);
    if devices.is_empty() {
        None
    } else {
        Some(devices[index % devices.len()])
    }
}

/// Run `schedule` to quiesce and evaluate every oracle. Deterministic:
/// equal schedules produce byte-identical outcomes.
pub fn run_schedule(schedule: &Schedule) -> ChaosOutcome {
    let mut cfg = TestbedConfig::small(schedule.variant, schedule.n_compute, schedule.n_storage);
    cfg.seed = schedule.seed;
    apply_cc_knobs(&mut cfg, schedule);
    let mut tb = Testbed::new(cfg);
    let t0 = SimTime::ZERO;
    inject_incast(&mut tb, schedule, t0);
    inject_blk(&mut tb, schedule, t0);

    for compute in 0..schedule.n_compute {
        tb.attach_fio(
            t0 + SimDuration::from_millis(1),
            compute,
            FioConfig {
                depth: schedule.fio_depth,
                bytes: schedule.io_bytes,
                read_fraction: schedule.read_fraction,
            },
        );
    }

    let mut violations = Vec::new();
    let mut corrupt_planted = 0u64;
    let mut corrupt_caught = 0u64;
    for (i, f) in schedule.faults.iter().enumerate() {
        let at = t0 + f.at;
        let heal_at = at + f.kind.heal_after();
        match &f.kind {
            FaultKind::FailStop {
                tier, device_index, ..
            } => {
                if let Some(dev) = resolve_device(&tb, *tier, *device_index) {
                    tb.schedule_failure(at, dev, FailureMode::FailStop);
                    tb.schedule_heal(heal_at, dev);
                }
            }
            FaultKind::Reboot {
                tier, device_index, ..
            } => {
                if let Some(dev) = resolve_device(&tb, *tier, *device_index) {
                    tb.schedule_failure_with(at, dev, FailureMode::FailStop, REBOOT_CONVERGENCE);
                    tb.schedule_heal(heal_at, dev);
                }
            }
            FaultKind::Blackhole {
                tier,
                device_index,
                fraction,
                salt,
                ..
            } => {
                if let Some(dev) = resolve_device(&tb, *tier, *device_index) {
                    tb.schedule_failure(
                        at,
                        dev,
                        FailureMode::Blackhole {
                            fraction: *fraction,
                            salt: *salt,
                        },
                    );
                    tb.schedule_heal(heal_at, dev);
                }
            }
            FaultKind::RandomLoss {
                tier,
                device_index,
                rate,
                ..
            } => {
                if let Some(dev) = resolve_device(&tb, *tier, *device_index) {
                    tb.schedule_failure(at, dev, FailureMode::RandomLoss { rate: *rate });
                    tb.schedule_heal(heal_at, dev);
                }
            }
            FaultKind::QosThrottle {
                compute,
                iops,
                mbps,
                ..
            } => {
                let compute = compute % schedule.n_compute.max(1);
                tb.schedule_qos(at, compute, throttle_spec(*iops, *mbps));
                tb.schedule_qos(heal_at, compute, QosSpec::unlimited());
            }
            FaultKind::StorageSlowdown {
                storage, factor, ..
            } => {
                let storage = storage % schedule.n_storage.max(1);
                tb.schedule_storage_degrade(at, storage, *factor);
                tb.schedule_storage_degrade(heal_at, storage, 1.0);
            }
            FaultKind::PcieStall { compute, extra, .. } => {
                let compute = compute % schedule.n_compute.max(1);
                tb.schedule_pcie_stall(at, compute, *extra);
                tb.schedule_pcie_stall(heal_at, compute, SimDuration::ZERO);
            }
            FaultKind::BitFlip { rate, blocks } => {
                // Side campaign: bit flips perturb *data*, not timing, so
                // they run against the CRC pipeline directly (exactly the
                // §4.7 data path) without disturbing the testbed's clock.
                let (planted, caught) =
                    bit_flip_campaign(schedule.seed, i as u64, *rate, *blocks, &mut violations);
                corrupt_planted += planted;
                corrupt_caught += caught;
            }
        }
    }

    tb.schedule_stop_fio(t0 + schedule.horizon);
    tb.run_until(t0 + schedule.quiesce_at());

    // --- oracles ---------------------------------------------------------
    let last_heal = t0 + schedule.last_heal();
    check_traces(
        tb.traces(),
        last_heal,
        schedule.recovery_deadline,
        &mut violations,
    );

    let submitted = tb.traces().len() as u64;
    let completed = tb.traces().iter().filter(|t| t.completed.is_some()).count() as u64;
    let admitted: u64 = (0..schedule.n_compute).map(|c| tb.qos_stats(c).0).sum();
    let completed_ctr: u64 = (0..schedule.n_compute)
        .map(|c| tb.compute_progress(c).0)
        .sum();
    conserve(
        "qos_admitted == traces",
        submitted,
        admitted,
        &mut violations,
    );
    conserve(
        "completed counters == completed traces",
        completed,
        completed_ctr,
        &mut violations,
    );
    conserve(
        "outstanding == submitted - completed",
        submitted - completed,
        tb.outstanding_ios() as u64,
        &mut violations,
    );
    if ebs_obs::ENABLED && tb.journal().dropped() == 0 {
        let mut submits = 0u64;
        let mut io_spans = 0u64;
        for ev in tb.journal().events() {
            if ev.track != ebs_stack::diag::IO_TRACK {
                continue;
            }
            match ev.kind {
                ebs_obs::EventKind::Instant { name: "submit", .. } => submits += 1,
                ebs_obs::EventKind::Span { .. } => io_spans += 1,
                _ => {}
            }
        }
        conserve(
            "journal submits == traces",
            submitted,
            submits,
            &mut violations,
        );
        conserve(
            "journal io spans == completed traces",
            completed,
            io_spans,
            &mut violations,
        );
    }

    let outstanding = tb.outstanding_ios() as u64;
    let queue_len = tb.queue_len() as u64;
    if outstanding > 0 || queue_len > schedule.max_idle_queue as u64 {
        violations.push(Violation::NotQuiescent {
            outstanding,
            queue_len,
            limit: schedule.max_idle_queue as u64,
        });
    }

    // CC oracles, armed only under the incast envelope: bounded queue
    // occupancy and no livelock.
    if let Some(inc) = &schedule.incast {
        let max_q = tb.fabric().max_queue_bytes() as u64;
        if max_q > inc.max_queue_bytes as u64 {
            violations.push(Violation::QueueBound {
                max_queue_bytes: max_q,
                limit: inc.max_queue_bytes as u64,
            });
        }
        if submitted > 0 && completed == 0 {
            violations.push(Violation::Livelock {
                submitted,
                completed,
            });
        }
    }

    let blk = blk_oracles(&tb, schedule, &mut violations);

    tb.sample_obs();
    let metrics_json = ebs_obs::metrics_snapshot(tb.metrics());
    let (trace_json, diagnosis) = if !violations.is_empty() && ebs_obs::ENABLED {
        (
            Some(ebs_obs::chrome_trace(tb.journal())),
            tb.explain_slowest_io().map(|e| e.render()),
        )
    } else {
        (None, None)
    };

    ChaosOutcome {
        seed: schedule.seed,
        submitted,
        completed,
        corrupt_planted,
        corrupt_caught,
        violations,
        blk,
        metrics_json,
        trace_json,
        diagnosis,
    }
}

/// Map a flat server index onto the shard that owns it: `(shard, local
/// index)`. The global index wraps modulo the fleet total, mirroring the
/// flat runner's `index % n` normalization.
fn locate(counts: &[usize], global: usize) -> (usize, usize) {
    let total: usize = counts.iter().sum();
    let mut g = global % total.max(1);
    for (s, &c) in counts.iter().enumerate() {
        if g < c {
            return (s, g);
        }
        g -= c;
    }
    (0, 0)
}

/// Replay `schedule` through the sharded fleet engine: the same fault
/// timeline split across `n_shards` pod-group shards run under the
/// window barrier with `threads` workers. The mapping from the flat
/// schedule to the fleet is fixed — tier faults land in shard
/// `device_index % n_shards` (resolved within that shard's fabric),
/// compute/storage-indexed faults map their global index onto the
/// owning shard's local slot, and fio attaches to every compute of
/// every shard. Cross-shard replication stays off so the quiescence
/// oracle keeps its meaning (no open-loop background traffic). The blk
/// pushdown envelope is a flat-runner feature — the fleet replay ignores
/// it (outcome `blk` stays `None`).
///
/// Deterministic for any `threads` value: the replay tests assert the
/// verdicts and the fleet digest are byte-identical across thread
/// counts.
pub fn run_schedule_sharded(schedule: &Schedule, n_shards: u32, threads: usize) -> ChaosOutcome {
    let mut cfg = ShardedTestbedConfig::new(
        schedule.variant,
        schedule.n_compute,
        schedule.n_storage,
        n_shards,
    );
    cfg.base.seed = schedule.seed;
    cfg.threads = threads;
    apply_cc_knobs(&mut cfg.base, schedule);
    let mut fleet = ShardedTestbed::new(cfg);
    let n = fleet.shards();
    let t0 = SimTime::ZERO;

    let computes: Vec<usize> = (0..n).map(|s| fleet.shard(s).config().n_compute).collect();
    let storages: Vec<usize> = (0..n).map(|s| fleet.shard(s).config().n_storage).collect();

    // Incast traffic maps each flat compute index onto the owning
    // shard's local slot, mirroring the fault mapping below.
    let start = t0 + SimDuration::from_millis(1);
    for e in incast_events(schedule) {
        let (s, local) = locate(&computes, e.compute as usize);
        fleet.shard_mut(s).schedule_io(
            start + SimDuration::from_micros(e.at_us),
            local,
            adversarial_req(&e, local),
        );
    }

    for s in 0..n {
        let tb = fleet.shard_mut(s);
        for compute in 0..tb.config().n_compute {
            tb.attach_fio(
                t0 + SimDuration::from_millis(1),
                compute,
                FioConfig {
                    depth: schedule.fio_depth,
                    bytes: schedule.io_bytes,
                    read_fraction: schedule.read_fraction,
                },
            );
        }
    }

    let mut violations = Vec::new();
    let mut corrupt_planted = 0u64;
    let mut corrupt_caught = 0u64;
    for (i, f) in schedule.faults.iter().enumerate() {
        let at = t0 + f.at;
        let heal_at = at + f.kind.heal_after();
        match &f.kind {
            FaultKind::FailStop {
                tier, device_index, ..
            } => {
                let tb = fleet.shard_mut(device_index % n);
                if let Some(dev) = resolve_device(tb, *tier, device_index / n.max(1)) {
                    tb.schedule_failure(at, dev, FailureMode::FailStop);
                    tb.schedule_heal(heal_at, dev);
                }
            }
            FaultKind::Reboot {
                tier, device_index, ..
            } => {
                let tb = fleet.shard_mut(device_index % n);
                if let Some(dev) = resolve_device(tb, *tier, device_index / n.max(1)) {
                    tb.schedule_failure_with(at, dev, FailureMode::FailStop, REBOOT_CONVERGENCE);
                    tb.schedule_heal(heal_at, dev);
                }
            }
            FaultKind::Blackhole {
                tier,
                device_index,
                fraction,
                salt,
                ..
            } => {
                let tb = fleet.shard_mut(device_index % n);
                if let Some(dev) = resolve_device(tb, *tier, device_index / n.max(1)) {
                    tb.schedule_failure(
                        at,
                        dev,
                        FailureMode::Blackhole {
                            fraction: *fraction,
                            salt: *salt,
                        },
                    );
                    tb.schedule_heal(heal_at, dev);
                }
            }
            FaultKind::RandomLoss {
                tier,
                device_index,
                rate,
                ..
            } => {
                let tb = fleet.shard_mut(device_index % n);
                if let Some(dev) = resolve_device(tb, *tier, device_index / n.max(1)) {
                    tb.schedule_failure(at, dev, FailureMode::RandomLoss { rate: *rate });
                    tb.schedule_heal(heal_at, dev);
                }
            }
            FaultKind::QosThrottle {
                compute,
                iops,
                mbps,
                ..
            } => {
                let (s, local) = locate(&computes, *compute);
                let tb = fleet.shard_mut(s);
                tb.schedule_qos(at, local, throttle_spec(*iops, *mbps));
                tb.schedule_qos(heal_at, local, QosSpec::unlimited());
            }
            FaultKind::StorageSlowdown {
                storage, factor, ..
            } => {
                let (s, local) = locate(&storages, *storage);
                let tb = fleet.shard_mut(s);
                tb.schedule_storage_degrade(at, local, *factor);
                tb.schedule_storage_degrade(heal_at, local, 1.0);
            }
            FaultKind::PcieStall { compute, extra, .. } => {
                let (s, local) = locate(&computes, *compute);
                let tb = fleet.shard_mut(s);
                tb.schedule_pcie_stall(at, local, *extra);
                tb.schedule_pcie_stall(heal_at, local, SimDuration::ZERO);
            }
            FaultKind::BitFlip { rate, blocks } => {
                let (planted, caught) =
                    bit_flip_campaign(schedule.seed, i as u64, *rate, *blocks, &mut violations);
                corrupt_planted += planted;
                corrupt_caught += caught;
            }
        }
    }

    for s in 0..n {
        fleet.shard_mut(s).schedule_stop_fio(t0 + schedule.horizon);
    }
    fleet.run_until(t0 + schedule.quiesce_at());

    // --- oracles (per shard where per-I/O, summed where conserved) -------
    let last_heal = t0 + schedule.last_heal();
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let mut admitted = 0u64;
    let mut completed_ctr = 0u64;
    let mut outstanding = 0u64;
    let mut queue_len = 0u64;
    for s in 0..n {
        let tb = fleet.shard(s);
        check_traces(
            tb.traces(),
            last_heal,
            schedule.recovery_deadline,
            &mut violations,
        );
        submitted += tb.traces().len() as u64;
        completed += tb.traces().iter().filter(|t| t.completed.is_some()).count() as u64;
        admitted += (0..tb.config().n_compute)
            .map(|c| tb.qos_stats(c).0)
            .sum::<u64>();
        completed_ctr += (0..tb.config().n_compute)
            .map(|c| tb.compute_progress(c).0)
            .sum::<u64>();
        outstanding += tb.outstanding_ios() as u64;
        queue_len += tb.queue_len() as u64;
    }
    conserve(
        "qos_admitted == traces",
        submitted,
        admitted,
        &mut violations,
    );
    conserve(
        "completed counters == completed traces",
        completed,
        completed_ctr,
        &mut violations,
    );
    conserve(
        "outstanding == submitted - completed",
        submitted - completed,
        outstanding,
        &mut violations,
    );
    if ebs_obs::ENABLED && (0..n).all(|s| fleet.shard(s).journal().dropped() == 0) {
        let mut submits = 0u64;
        let mut io_spans = 0u64;
        for s in 0..n {
            for ev in fleet.shard(s).journal().events() {
                if ev.track != ebs_stack::diag::IO_TRACK {
                    continue;
                }
                match ev.kind {
                    ebs_obs::EventKind::Instant { name: "submit", .. } => submits += 1,
                    ebs_obs::EventKind::Span { .. } => io_spans += 1,
                    _ => {}
                }
            }
        }
        conserve(
            "journal submits == traces",
            submitted,
            submits,
            &mut violations,
        );
        conserve(
            "journal io spans == completed traces",
            completed,
            io_spans,
            &mut violations,
        );
    }

    // Each shard has its own event queue idling at quiesce, so the
    // idle-queue bound scales with the shard count.
    let limit = schedule.max_idle_queue as u64 * n as u64;
    if outstanding > 0 || queue_len > limit {
        violations.push(Violation::NotQuiescent {
            outstanding,
            queue_len,
            limit,
        });
    }

    // CC oracles under the incast envelope: the bound applies to the
    // worst egress queue across every shard's fabric.
    if let Some(inc) = &schedule.incast {
        let max_q = (0..n)
            .map(|s| fleet.shard(s).fabric().max_queue_bytes() as u64)
            .max()
            .unwrap_or(0);
        if max_q > inc.max_queue_bytes as u64 {
            violations.push(Violation::QueueBound {
                max_queue_bytes: max_q,
                limit: inc.max_queue_bytes as u64,
            });
        }
        if submitted > 0 && completed == 0 {
            violations.push(Violation::Livelock {
                submitted,
                completed,
            });
        }
    }

    // The fleet digest is the replay-comparable metrics string for the
    // sharded engine: per-shard digests at the committed window edge plus
    // the exchange totals. Trace/diagnosis capture stays with the flat
    // runner, which the shrinker uses.
    let metrics_json = fleet.metrics_digest();

    ChaosOutcome {
        seed: schedule.seed,
        submitted,
        completed,
        corrupt_planted,
        corrupt_caught,
        violations,
        blk: None,
        metrics_json,
        trace_json: None,
        diagnosis: None,
    }
}

fn campaign_header(addr: u64, segment_id: u64) -> EbsHeader {
    EbsHeader {
        version: EbsHeader::VERSION,
        op: EbsOp::WriteBlock,
        flags: 0,
        path_id: 0,
        vd_id: 0,
        rpc_id: addr,
        pkt_id: addr as u16,
        total_pkts: CAMPAIGN_SEGMENT_BLOCKS as u16,
        block_addr: addr,
        len: ebs_sa::BLOCK_SIZE,
        payload_crc: 0,
        path_seq: 0,
        segment_id,
    }
}

/// Push `blocks` deterministic blocks through the DPU CRC stage with a
/// flip injector, then run the receiver-side segment aggregation check.
/// Flips are forced into the CRC register (as in the scripted §4.7
/// experiment) so ground truth is exact: a segment is corrupted iff some
/// block's claimed CRC disagrees with a clean recomputation. Returns
/// (planted, caught) corrupted-segment counts and records any mismatch
/// between ground truth and the checker's verdict.
fn bit_flip_campaign(
    seed: u64,
    fault_index: u64,
    rate: f64,
    blocks: usize,
    out: &mut Vec<Violation>,
) -> (u64, u64) {
    let block_size = ebs_sa::BLOCK_SIZE as usize;
    let mut data_rng = rng::stream_indexed(seed, "chaos-bitflip-data", fault_index);
    let mut injector =
        BitFlipInjector::new(seed ^ fault_index.wrapping_mul(0x9E37_79B9_7F4A_7C15), rate);
    injector.crc_register_share = 1.0;
    let mut pipeline = Pipeline::new(vec![
        Box::new(CrcStage::new(block_size, Some(injector))) as Box<dyn Stage>
    ]);

    let mut planted = 0u64;
    let mut caught = 0u64;
    let mut checker = SegmentChecker::new(block_size);
    let mut segment_corrupt = false;
    let mut segment = 0u64;
    for addr in 0..blocks as u64 {
        let mut block = vec![0u8; block_size];
        data_rng.fill(&mut block[..]);
        let mut ctx = PacketCtx::new(campaign_header(addr, segment), Bytes::from(block.clone()));
        if pipeline.process(SimTime::ZERO, &mut ctx).is_none() {
            // The CRC stage never drops packets; treat a drop as a lost
            // block, which the conservation oracle frames best.
            out.push(Violation::Conservation {
                counter: "crc pipeline forwarded blocks",
                expected: blocks as u64,
                got: addr,
            });
            return (planted, caught);
        }
        if ctx.hdr.payload_crc != block_crc_raw(&block, block_size) {
            segment_corrupt = true;
        }
        checker.add_block(&block, ctx.hdr.payload_crc);
        let last_in_segment = addr % CAMPAIGN_SEGMENT_BLOCKS as u64
            == CAMPAIGN_SEGMENT_BLOCKS as u64 - 1
            || addr == blocks as u64 - 1;
        if last_in_segment {
            let verdict = checker.verify_and_reset();
            match (segment_corrupt, verdict) {
                (true, SegmentVerdict::Ok) => {
                    planted += 1;
                    out.push(Violation::UndetectedCorruption { segment });
                }
                (true, SegmentVerdict::Corrupt) => {
                    planted += 1;
                    caught += 1;
                }
                (false, SegmentVerdict::Corrupt) => {
                    out.push(Violation::CrcFalsePositive { segment });
                }
                (false, SegmentVerdict::Ok) => {}
            }
            segment_corrupt = false;
            segment += 1;
        }
    }
    (planted, caught)
}
