//! Schedule shrinking: delta-debug a violating schedule down to a
//! minimal reproduction.
//!
//! Three reduction moves, applied greedily and deterministically until a
//! fixpoint: drop fault events (ddmin-style — halves, then singles),
//! halve fault durations (down to a 1 ms floor), and reduce the workload
//! (fio depth, then the horizon). A candidate is accepted iff it still
//! violates some oracle; because the runner is deterministic, acceptance
//! is a pure function of the candidate, so the shrink itself replays
//! bit-identically from the original schedule.

use ebs_sim::SimDuration;

use crate::runner::{run_schedule, ChaosOutcome};
use crate::schedule::Schedule;

/// Durations are not halved below this floor: sub-millisecond faults are
/// below every detection/convergence constant in the stacks and stop
/// being the same bug.
const MIN_HEAL: SimDuration = SimDuration::from_millis(1);

/// Hard cap on runner invocations during one shrink, so a pathological
/// schedule cannot stall a CI job. Reached only with dozens of faults.
const MAX_ATTEMPTS: usize = 256;

/// Result of shrinking a violating schedule.
#[derive(Debug)]
pub struct ShrinkOutcome {
    /// The minimal still-violating schedule.
    pub minimal: Schedule,
    /// The (deterministic) outcome of running `minimal`.
    pub outcome: ChaosOutcome,
    /// Candidate runs spent reaching the fixpoint.
    pub candidates_tried: usize,
}

struct Shrinker {
    attempts: usize,
}

impl Shrinker {
    /// Run a candidate; `Some(outcome)` iff it still violates.
    fn violates(&mut self, candidate: &Schedule) -> Option<ChaosOutcome> {
        if self.attempts >= MAX_ATTEMPTS {
            return None;
        }
        self.attempts += 1;
        let outcome = run_schedule(candidate);
        if outcome.ok() {
            None
        } else {
            Some(outcome)
        }
    }
}

/// Shrink `schedule` to a minimal still-violating reproduction. Returns
/// `None` if the original run does not violate any oracle (nothing to
/// shrink).
pub fn shrink(schedule: &Schedule) -> Option<ShrinkOutcome> {
    let mut sh = Shrinker { attempts: 0 };
    let mut best = schedule.clone();
    let mut outcome = sh.violates(&best)?;

    loop {
        let mut progressed = false;

        // 1. Drop fault events: try removing chunks of decreasing size.
        let mut chunk = best.faults.len().div_ceil(2).max(1);
        while chunk >= 1 && best.faults.len() > 1 {
            let mut start = 0;
            while start < best.faults.len() && best.faults.len() > 1 {
                let end = (start + chunk).min(best.faults.len());
                let mut candidate = best.clone();
                candidate.faults.drain(start..end);
                if candidate.faults.is_empty() {
                    start = end;
                    continue;
                }
                if let Some(o) = sh.violates(&candidate) {
                    best = candidate;
                    outcome = o;
                    progressed = true;
                    // Same start index now points at the next chunk.
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk = chunk.div_ceil(2).max(1);
        }

        // 2. Halve fault durations toward the floor.
        loop {
            let mut halved = false;
            for i in 0..best.faults.len() {
                let cur = best.faults[i].kind.heal_after();
                if cur <= MIN_HEAL {
                    continue;
                }
                let mut candidate = best.clone();
                candidate.faults[i]
                    .kind
                    .set_heal_after(cur.mul_f64(0.5).max(MIN_HEAL));
                if let Some(o) = sh.violates(&candidate) {
                    best = candidate;
                    outcome = o;
                    progressed = true;
                    halved = true;
                }
            }
            if !halved {
                break;
            }
        }

        // 3. Reduce the workload: fio depth first, then the horizon (the
        //    horizon only shrinks while every fault still injects inside
        //    the workload window).
        while best.fio_depth > 1 {
            let mut candidate = best.clone();
            candidate.fio_depth /= 2;
            match sh.violates(&candidate) {
                Some(o) => {
                    best = candidate;
                    outcome = o;
                    progressed = true;
                }
                None => break,
            }
        }
        loop {
            let half = best.horizon.mul_f64(0.5);
            if half < SimDuration::from_millis(5) || best.faults.iter().any(|f| f.at >= half) {
                break;
            }
            let mut candidate = best.clone();
            candidate.horizon = half;
            match sh.violates(&candidate) {
                Some(o) => {
                    best = candidate;
                    outcome = o;
                    progressed = true;
                }
                None => break,
            }
        }

        if !progressed || sh.attempts >= MAX_ATTEMPTS {
            break;
        }
    }

    Some(ShrinkOutcome {
        minimal: best,
        outcome,
        candidates_tried: sh.attempts,
    })
}
