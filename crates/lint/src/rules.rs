//! The per-file rule tiers, evaluated over lexed source.
//!
//! Every rule reports `file:line` diagnostics; every rule (except the
//! allowlist itself) can be waived per-line with an inline
//! `// lint: allow(<rule>) — <reason>` comment on the offending line or the
//! line directly above it. A waiver without a reason does not count — the
//! reason is the reviewable artifact. Waivers that match an occurrence are
//! *recorded*: the stale-waiver audit in [`crate::lint_tree`] errors on any
//! `lint: allow` comment that no longer suppresses anything.
//!
//! The interprocedural tiers (call-graph taint, shard isolation's call
//! rules) live in [`crate::graph`]; this module holds the token-level
//! rules plus the waiver machinery both passes share.

use crate::config::Config;
use crate::lexer::{lex, test_regions, Line};

/// Which tier produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Protocol engines must stay sans-io.
    SansIo,
    /// The simulator must stay deterministic.
    Determinism,
    /// `unsafe` only where allowlisted, always with a `// SAFETY:` comment.
    UnsafeHygiene,
    /// No `unwrap`/`expect`/`panic!` on the data path without a waiver.
    PanicDiscipline,
    /// Sharded workers reach other shards only through the gateway API.
    ShardIsolation,
    /// A `lint: allow(…)` comment that suppresses nothing.
    StaleWaiver,
}

impl Rule {
    /// The name used in diagnostics, the JSON report and waiver comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::SansIo => "sans_io",
            Rule::Determinism => "determinism",
            Rule::UnsafeHygiene => "unsafe_hygiene",
            Rule::PanicDiscipline => "panic_discipline",
            Rule::ShardIsolation => "shard_isolation",
            Rule::StaleWaiver => "stale_waiver",
        }
    }

    /// Rules a waiver comment may name. `stale_waiver` is excluded on
    /// purpose: the fix for a stale waiver is deleting it, not waiving it.
    pub const WAIVABLE: &'static [Rule] = &[
        Rule::SansIo,
        Rule::Determinism,
        Rule::UnsafeHygiene,
        Rule::PanicDiscipline,
        Rule::ShardIsolation,
    ];
}

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Offending tier.
    pub rule: Rule,
    /// Human-readable explanation.
    pub msg: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.msg
        )
    }
}

/// Where a file sits in the workspace, derived from its repo-relative path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Crate directory name (`tcp` for `crates/tcp/…`, `bytes` for
    /// `vendor/bytes/…`, `.` for the root crate's `src/…`). `None` for
    /// paths outside any crate (root `tests/`, `examples/`).
    pub crate_name: Option<String>,
    /// Inside the crate's `src/` tree (rules about engine purity only
    /// bind here — a crate's own `tests/` and `benches/` are host code).
    pub in_src: bool,
    /// Whole file is test/bench/example code by location.
    pub test_by_path: bool,
}

/// Classify a repo-relative path like `crates/tcp/src/engine.rs`.
pub fn classify(path: &str) -> FileClass {
    let parts: Vec<&str> = path.split('/').collect();
    let (crate_name, rest): (Option<String>, &[&str]) = match parts.first().copied() {
        Some("crates") | Some("vendor") if parts.len() > 2 => {
            (Some(parts[1].to_string()), &parts[2..])
        }
        Some("src") => (Some(".".to_string()), &parts[..]),
        _ => (None, &parts[..]),
    };
    let in_src = rest.first() == Some(&"src");
    let test_by_path = rest
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples" || *p == "fixtures");
    FileClass {
        crate_name,
        in_src,
        test_by_path,
    }
}

/// What one file's token rules produced: diagnostics plus the waivers that
/// actually matched an occurrence (fuel for the stale-waiver audit).
#[derive(Debug, Default)]
pub struct FileLint {
    /// Violations found in the file.
    pub diags: Vec<Diagnostic>,
    /// `(0-based comment line, rule name)` of every waiver that matched an
    /// occurrence — including reason-less ones, which get their own
    /// diagnostic rather than a stale-waiver one.
    pub used_waivers: Vec<(usize, &'static str)>,
}

/// Lint one file's source text. `path` must be repo-relative.
pub fn lint_file(path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let lines = lex(src);
    let in_test = test_regions(&lines);
    lint_file_lexed(path, &lines, &in_test, cfg).diags
}

/// Token-rule pass over pre-lexed source (the orchestrator lexes once and
/// shares the lines with the parser and the call-graph pass).
pub fn lint_file_lexed(path: &str, lines: &[Line], in_test: &[bool], cfg: &Config) -> FileLint {
    let class = classify(path);
    let mut out = FileLint::default();

    let in_crate = |list: &[String]| {
        class
            .crate_name
            .as_deref()
            .is_some_and(|c| list.iter().any(|l| l == c))
    };

    // --- Tier 1: sans-io purity -----------------------------------------
    if class.in_src && in_crate(&cfg.sans_io_crates) {
        for pat in &cfg.sans_io_forbidden {
            scan_pattern(lines, pat, |n| {
                match waiver_state(lines, n, Rule::SansIo) {
                    (Waiver::Valid, at) => out.used_waivers.push((at, Rule::SansIo.name())),
                    _ => out.diags.push(diag(path, n, Rule::SansIo, format!(
                        "`{pat}` referenced in a sans-io protocol crate — the host must inject time, io and randomness"
                    ))),
                }
            });
        }
    }

    // --- Tier 2: determinism --------------------------------------------
    if class.in_src && in_crate(&cfg.determinism_crates) {
        for pat in &cfg.determinism_forbidden {
            scan_pattern(lines, pat, |n| {
                match waiver_state(lines, n, Rule::Determinism) {
                    (Waiver::Valid, at) => out.used_waivers.push((at, Rule::Determinism.name())),
                    _ => out.diags.push(diag(
                        path,
                        n,
                        Rule::Determinism,
                        format!("`{pat}` breaks byte-identical replay in a determinism-tier crate"),
                    )),
                }
            });
        }
        for pat in &cfg.determinism_hash_collections {
            scan_pattern(lines, pat, |n| {
                if in_test[n] {
                    return;
                }
                match waiver_state(lines, n, Rule::Determinism) {
                    (Waiver::Valid, at) => out.used_waivers.push((at, Rule::Determinism.name())),
                    _ => out.diags.push(diag(path, n, Rule::Determinism, format!(
                        "`{pat}` uses a randomly-seeded default hasher — iteration order varies run to run; use BTreeMap/BTreeSet or a fixed-seed hasher"
                    ))),
                }
            });
        }
    }

    // --- Tier 3: unsafe hygiene -----------------------------------------
    let unsafe_allowed = cfg.unsafe_allow_files.iter().any(|f| f == path);
    scan_pattern(lines, "unsafe", |n| {
        if !unsafe_allowed {
            out.diags.push(diag(path, n, Rule::UnsafeHygiene, format!(
                "`unsafe` outside the allowlist — add `{path}` to [unsafe_hygiene] allow_files in lint.toml and justify it in review"
            )));
        } else if !has_safety_comment(lines, n) {
            out.diags.push(diag(
                path,
                n,
                Rule::UnsafeHygiene,
                "`unsafe` without an immediately preceding `// SAFETY:` comment".to_string(),
            ));
        }
    });

    // --- Tier 4: panic discipline ---------------------------------------
    if class.in_src && in_crate(&cfg.panic_crates) && !class.test_by_path {
        for pat in &cfg.panic_deny {
            scan_pattern(lines, pat, |n| {
                if in_test[n] {
                    return;
                }
                match waiver_state(lines, n, Rule::PanicDiscipline) {
                    (Waiver::Valid, at) => {
                        out.used_waivers.push((at, Rule::PanicDiscipline.name()))
                    }
                    (Waiver::MissingReason, at) => {
                        out.used_waivers.push((at, Rule::PanicDiscipline.name()));
                        out.diags.push(diag(path, n, Rule::PanicDiscipline, format!(
                            "`{pat}` waiver is missing its reason — write `// lint: allow(panic_discipline) — <why this cannot fire>`"
                        )));
                    }
                    (Waiver::None, _) => out.diags.push(diag(path, n, Rule::PanicDiscipline, format!(
                        "`{pat}` on the data path — return an error, or waive with `// lint: allow(panic_discipline) — <reason>`"
                    ))),
                }
            });
        }
    }

    // --- Tier 5 (token part): sync primitives stay in the gateway -------
    // The call-graph half of shard isolation (mailbox confinement, the
    // gateway's audited `Testbed`/`EventQueue` surface) is in `graph`.
    if class.in_src
        && in_crate(&cfg.shard_sync_crates)
        && !cfg.shard_boundary_files.iter().any(|f| f == path)
    {
        for pat in &cfg.shard_sync_forbidden {
            scan_pattern(lines, pat, |n| {
                if in_test[n] {
                    return;
                }
                match waiver_state(lines, n, Rule::ShardIsolation) {
                    (Waiver::Valid, at) => out.used_waivers.push((at, Rule::ShardIsolation.name())),
                    _ => out.diags.push(diag(path, n, Rule::ShardIsolation, format!(
                        "`{pat}` outside the shard gateway module — cross-thread coordination lives only in the audited barrier code"
                    ))),
                }
            });
        }
    }

    out
}

/// Check a crate root for `#![forbid(unsafe_code)]`. Returns a diagnostic
/// when it is missing and the crate is not allowlisted.
pub fn check_crate_root(
    path: &str,
    src: &str,
    crate_name: &str,
    cfg: &Config,
) -> Option<Diagnostic> {
    if cfg.unsafe_allow_crates.iter().any(|c| c == crate_name) {
        return None;
    }
    let lines = lex(src);
    let found = lines
        .iter()
        .any(|l| squash(&l.code).contains("#![forbid(unsafe_code)]"));
    if found {
        None
    } else {
        Some(diag(path, 0, Rule::UnsafeHygiene, format!(
            "crate root of `{crate_name}` lacks `#![forbid(unsafe_code)]` (allowlist the crate in lint.toml [unsafe_hygiene] allow_crates if unsafe is intentional)"
        )))
    }
}

fn diag(path: &str, n: usize, rule: Rule, msg: String) -> Diagnostic {
    Diagnostic {
        path: path.to_string(),
        line: n + 1,
        rule,
        msg,
    }
}

/// Invoke `hit(line_index)` for every identifier-bounded occurrence of
/// `pat` in the code channel.
fn scan_pattern(lines: &[Line], pat: &str, mut hit: impl FnMut(usize)) {
    for (n, line) in lines.iter().enumerate() {
        if find_bounded(&line.code, pat) {
            hit(n);
        }
    }
}

/// Substring search with identifier-boundary checks on whichever ends of
/// the pattern are identifier characters (so `thread_rng` never matches
/// `my_thread_rng_shim`, while `.unwrap()` needs no left boundary).
pub(crate) fn find_bounded(code: &str, pat: &str) -> bool {
    if pat.is_empty() {
        return false;
    }
    let first_ident = pat.chars().next().is_some_and(is_ident);
    let last_ident = pat.chars().last().is_some_and(is_ident);
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(pat) {
        let start = from + pos;
        let end = start + pat.len();
        let left_ok = !first_ident || start == 0 || !is_ident(bytes[start - 1] as char);
        let right_ok = !last_ident || end >= bytes.len() || !is_ident(bytes[end] as char);
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn squash(code: &str) -> String {
    code.chars().filter(|c| !c.is_whitespace()).collect()
}

/// Whether an `unsafe` on line `n` is covered by a SAFETY comment: either
/// trailing on the same line, or in the contiguous block of comment-only /
/// attribute-only lines directly above (attributes like `#[target_feature]`
/// may sit between the comment and the `unsafe fn`).
fn has_safety_comment(lines: &[Line], n: usize) -> bool {
    if lines[n].comment.trim_start().starts_with("SAFETY") {
        return true;
    }
    let mut k = n;
    let mut budget = 12usize;
    while k > 0 && budget > 0 {
        k -= 1;
        budget -= 1;
        let l = &lines[k];
        let code = l.code.trim();
        let is_attr = code.starts_with("#[") && code.ends_with(']');
        if !code.is_empty() && !is_attr {
            return false; // hit real code before any SAFETY comment
        }
        if l.comment.trim_start().starts_with("SAFETY") {
            return true;
        }
        if code.is_empty() && l.comment.is_empty() {
            return false; // blank line terminates the block
        }
    }
    false
}

pub(crate) enum Waiver {
    None,
    MissingReason,
    Valid,
}

/// Look for `lint: allow(<rule>)` on line `n` or the line directly above.
/// The second element is the line the waiver comment sits on (== `n` when
/// no waiver matched), which is what the stale-waiver audit records.
pub(crate) fn waiver_state(lines: &[Line], n: usize, rule: Rule) -> (Waiver, usize) {
    let mut best = (Waiver::None, n);
    for idx in [Some(n), n.checked_sub(1)].into_iter().flatten() {
        // The waiver above must be a comment-only line — a waiver trailing
        // some other statement does not leak downward.
        if idx != n && !lines[idx].is_code_blank() {
            continue;
        }
        match waiver_on(&lines[idx].comment, rule) {
            Waiver::Valid => return (Waiver::Valid, idx),
            Waiver::MissingReason => best = (Waiver::MissingReason, idx),
            Waiver::None => {}
        }
    }
    best
}

fn waiver_on(comment: &str, rule: Rule) -> Waiver {
    let needle = format!("lint: allow({})", rule.name());
    let Some(pos) = comment.find(&needle) else {
        return Waiver::None;
    };
    let rest = comment[pos + needle.len()..].trim_start();
    let rest = rest.trim_start_matches(['—', '-', ':', ' ']).trim();
    if rest.is_empty() {
        Waiver::MissingReason
    } else {
        Waiver::Valid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::parse(
            r#"
[sans_io]
crates = ["tcp"]
forbidden = ["Instant::now", "std::net", "thread_rng"]

[determinism]
crates = ["sim"]
forbidden = ["Instant::now"]
hash_collections = ["HashMap"]

[unsafe_hygiene]
allow_files = ["crates/crc/src/lib.rs"]
allow_crates = ["crc"]

[panic_discipline]
crates = ["tcp"]
deny = [".unwrap()", "panic!"]
"#,
        )
        .expect("test config parses")
    }

    #[test]
    fn sans_io_fires_in_code_not_strings() {
        let d = lint_file(
            "crates/tcp/src/engine.rs",
            "fn f() { let t = Instant::now(); }\nfn g() { let s = \"Instant::now\"; }\n",
            &cfg(),
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
        assert_eq!(d[0].rule, Rule::SansIo);
    }

    #[test]
    fn sans_io_ignores_other_crates() {
        let d = lint_file(
            "crates/sim/src/lib.rs",
            "fn f() { std::net::lookup(); }",
            &cfg(),
        );
        assert!(d.iter().all(|d| d.rule != Rule::SansIo));
    }

    #[test]
    fn determinism_flags_hashmap_outside_tests() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests {\n  fn t() { let m: HashMap<u8,u8> = HashMap::new(); }\n}\n";
        let d = lint_file("crates/sim/src/lib.rs", src, &cfg());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn unsafe_needs_allowlist_and_safety() {
        let d = lint_file(
            "crates/tcp/src/engine.rs",
            "fn f() { unsafe { g() } }",
            &cfg(),
        );
        assert!(d.iter().any(|d| d.rule == Rule::UnsafeHygiene));
        let ok = lint_file(
            "crates/crc/src/lib.rs",
            "// SAFETY: checked above.\nunsafe { g() }\n",
            &cfg(),
        );
        assert!(ok.is_empty(), "{ok:?}");
        let missing = lint_file("crates/crc/src/lib.rs", "unsafe { g() }\n", &cfg());
        assert_eq!(missing.len(), 1);
    }

    #[test]
    fn safety_comment_skips_attributes() {
        let src = "// SAFETY contract: caller checked cpu features.\n#[target_feature(enable = \"sse4.2\")]\nunsafe fn k() {}\n";
        assert!(lint_file("crates/crc/src/lib.rs", src, &cfg()).is_empty());
    }

    #[test]
    fn panic_discipline_waivers() {
        let base = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let d = lint_file("crates/tcp/src/engine.rs", base, &cfg());
        assert_eq!(d.len(), 1);
        let waived = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint: allow(panic_discipline) — x proven Some above\n";
        assert!(lint_file("crates/tcp/src/engine.rs", waived, &cfg()).is_empty());
        let missing = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint: allow(panic_discipline)\n";
        let d = lint_file("crates/tcp/src/engine.rs", missing, &cfg());
        assert_eq!(d.len(), 1);
        assert!(d[0].msg.contains("missing its reason"));
    }

    #[test]
    fn panic_ok_in_cfg_test_and_tests_dir() {
        let src = "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { panic!(\"boom\"); }\n}\n";
        assert!(lint_file("crates/tcp/src/engine.rs", src, &cfg()).is_empty());
        assert!(lint_file(
            "crates/tcp/tests/lossy.rs",
            "fn t() { x.unwrap(); }",
            &cfg()
        )
        .is_empty());
    }

    #[test]
    fn crate_root_forbid() {
        assert!(check_crate_root(
            "crates/tcp/src/lib.rs",
            "#![forbid(unsafe_code)]\n",
            "tcp",
            &cfg()
        )
        .is_none());
        assert!(check_crate_root("crates/tcp/src/lib.rs", "fn f() {}\n", "tcp", &cfg()).is_some());
        assert!(check_crate_root(
            "crates/crc/src/lib.rs",
            "#![deny(unsafe_code)]\n",
            "crc",
            &cfg()
        )
        .is_none());
    }

    #[test]
    fn bounded_matching() {
        assert!(find_bounded("thread_rng()", "thread_rng"));
        assert!(!find_bounded("my_thread_rng_shim()", "thread_rng"));
        assert!(find_bounded("rand::thread_rng()", "thread_rng"));
        assert!(!find_bounded("unsafety", "unsafe"));
    }
}
