//! Workspace call graph and taint propagation.
//!
//! The per-file tiers in [`rules`](crate::rules) see one file at a time, so
//! a forbidden API wrapped in a helper — `fn stamp() -> Instant {
//! Instant::now() }` in a host crate, called from an engine — is invisible
//! to them. This pass stitches the whole workspace together:
//!
//! 1. every parsed function becomes a node, addressed by crate directory,
//!    module path (file layout plus inline `mod`s) and `impl` type;
//! 2. call expressions are resolved through `use` trees, `crate`/`super`/
//!    `Self` prefixes and cross-crate package aliases into edges;
//! 3. each tier's forbidden patterns mark *directly tainted* functions, and
//!    taint flows backwards along edges — stopping at the sanctioned
//!    boundary functions listed in `[callgraph] boundary`;
//! 4. a diagnostic fires at the **call site** where a tier-covered function
//!    (engine/simulator `src`, non-test) invokes a tainted function outside
//!    the tier, with the full witness chain down to the source line.
//!
//! Resolution is deliberately conservative where Rust needs type
//! inference: a bare method call `x.poll()` resolves to the caller's own
//! `impl` first, then to same-named workspace methods only when there are
//! at most `METHOD_FANOUT_CAP` candidates. Unresolvable calls create no
//! edges — they can shorten a chain but never invent one, and the token
//! tiers still catch any forbidden API named literally in a covered file.
//!
//! The module also hosts the call-level half of **tier 5 — shard
//! isolation** (the token half lives in `rules`): the cross-shard mailbox
//! API may be invoked only from the gateway files, and the gateway itself
//! may touch the shard-state types (`Testbed`, `EventQueue`) only through
//! the audited surface in `[shard_isolation] boundary_allowed_calls`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::config::Config;
use crate::lexer::Line;
use crate::parser::{Call, FileItems};
use crate::rules::{classify, find_bounded, waiver_state, Diagnostic, Rule, Waiver};

/// One scanned file, lexed and parsed once by the orchestrator.
pub struct FileData {
    /// Repo-relative path with `/` separators.
    pub rel: String,
    /// Lexed lines (code/comment channels).
    pub lines: Vec<Line>,
    /// Per-line `#[cfg(test)]` region map.
    pub in_test: Vec<bool>,
    /// Parsed items.
    pub items: FileItems,
}

/// What the interprocedural pass produced.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Violations, unsorted (the orchestrator sorts and dedups).
    pub diags: Vec<Diagnostic>,
    /// `(file index, waiver comment line, rule name)` of waivers that
    /// suppressed a graph diagnostic or a taint source.
    pub used_waivers: Vec<(usize, usize, &'static str)>,
}

/// Max same-named workspace methods a bare `x.m()` may resolve to before
/// the call is treated as unresolvable (avoids linking every `.get()` to
/// every `get` in the tree).
const METHOD_FANOUT_CAP: usize = 4;

/// Method names that never resolve through the bare-name fallback: they
/// are overwhelmingly std container/iterator calls, and linking `x.iter()`
/// to the one workspace type that happens to define `iter` produces far
/// more false edges than it catches. The caller's own `impl` (and every
/// explicit `Type::name` path) still resolves these precisely.
const METHOD_NAME_STOPLIST: &[&str] = &[
    "all",
    "any",
    "chain",
    "clear",
    "clone",
    "cloned",
    "collect",
    "contains",
    "copied",
    "count",
    "drain",
    "extend",
    "filter",
    "find",
    "first",
    "flat_map",
    "flatten",
    "fold",
    "get",
    "get_mut",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "last",
    "len",
    "map",
    "max",
    "min",
    "next",
    "pop",
    "push",
    "remove",
    "rev",
    "sort",
    "split",
    "sum",
    "take",
    "zip",
];

/// Longest witness chain printed in a diagnostic message.
const CHAIN_CAP: usize = 6;

/// A call-graph node: one non-test function definition.
struct Node {
    file: usize,
    def: usize,
    crate_key: Option<String>,
    in_src: bool,
    /// `crate::mod::Type::name` with the crate *directory* name (what
    /// `[callgraph] boundary` entries are matched against).
    fq: String,
    self_ty: Option<String>,
    /// Resolved outgoing edges: `(callee node, 0-based call line)`.
    edges: Vec<(usize, usize)>,
    /// Resolved targets per call, aligned with the parsed call list.
    targets: Vec<Vec<usize>>,
}

/// How a node became tainted, for witness-chain reconstruction.
#[derive(Clone)]
enum Cause {
    /// Matched `pattern` on `line` of the node's own body.
    Direct(String, usize),
    /// Calls the tainted node.
    Via(usize),
}

/// Run the whole interprocedural pass.
pub fn analyze(
    files: &[FileData],
    extern_aliases: &BTreeMap<String, String>,
    cfg: &Config,
) -> Analysis {
    let mut out = Analysis::default();
    let g = build(files, extern_aliases);

    if cfg.callgraph_enabled {
        let boundary = boundary_nodes(&g, cfg);
        // Tier 1: sans-io purity, transitively.
        let sans_io: Vec<(&str, bool)> = cfg
            .sans_io_forbidden
            .iter()
            .map(|p| (p.as_str(), false))
            .collect();
        taint_tier(
            files,
            &g,
            &boundary,
            Rule::SansIo,
            &cfg.sans_io_crates,
            &sans_io,
            &mut out,
        );
        // Tier 2: determinism, transitively (hash collections only count
        // outside `#[cfg(test)]` regions, matching the token rule).
        let mut det: Vec<(&str, bool)> = cfg
            .determinism_forbidden
            .iter()
            .map(|p| (p.as_str(), false))
            .collect();
        det.extend(
            cfg.determinism_hash_collections
                .iter()
                .map(|p| (p.as_str(), true)),
        );
        taint_tier(
            files,
            &g,
            &boundary,
            Rule::Determinism,
            &cfg.determinism_crates,
            &det,
            &mut out,
        );
    }

    shard_isolation(files, &g, cfg, &mut out);
    out
}

struct Graph {
    nodes: Vec<Node>,
}

/// Module path a file contributes: `src/lib.rs` → `[]`, `src/a/b.rs` →
/// `[a, b]`, `src/a/mod.rs` → `[a]`. Non-`src` files (tests, benches,
/// examples) get a `#`-prefixed synthetic path so they can never be
/// resolution targets of real code.
fn file_mods(rel: &str, in_src: bool) -> Vec<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    let src_at = parts.iter().position(|p| *p == "src");
    if in_src {
        let tail = &parts[src_at.expect("in_src implies a src segment") + 1..];
        let mut mods: Vec<String> = tail[..tail.len().saturating_sub(1)]
            .iter()
            .map(|s| s.to_string())
            .collect();
        if let Some(stem) = tail.last().and_then(|f| f.strip_suffix(".rs")) {
            if stem != "lib" && stem != "main" && stem != "mod" {
                mods.push(stem.to_string());
            }
        }
        mods
    } else {
        let mut mods = vec!["#".to_string()];
        mods.extend(parts.iter().map(|s| s.to_string()));
        mods
    }
}

fn build(files: &[FileData], extern_aliases: &BTreeMap<String, String>) -> Graph {
    let mut nodes = Vec::new();
    // (crate, module-join, name) → free fns; (type, name) → assoc fns;
    // name → methods (fns with a self type) for bare `.m()` fallback.
    let mut free: BTreeMap<(String, String, String), Vec<usize>> = BTreeMap::new();
    let mut assoc: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();

    for (fi, fd) in files.iter().enumerate() {
        let class = classify(&fd.rel);
        let fmods = file_mods(&fd.rel, class.in_src);
        for (di, f) in fd.items.fns.iter().enumerate() {
            let mut mods = fmods.clone();
            mods.extend(f.mods.iter().cloned());
            let crate_key = class.crate_name.clone();
            let mut fq = crate_key.clone().unwrap_or_else(|| "#".to_string());
            for m in &mods {
                fq.push_str("::");
                fq.push_str(m);
            }
            if let Some(t) = &f.self_ty {
                fq.push_str("::");
                fq.push_str(t);
            }
            fq.push_str("::");
            fq.push_str(&f.name);

            let id = nodes.len();
            if !f.is_test {
                if let Some(c) = &crate_key {
                    free.entry((c.clone(), mods.join("::"), f.name.clone()))
                        .or_default()
                        .push(id);
                }
                if let Some(t) = &f.self_ty {
                    assoc
                        .entry((t.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                    by_name.entry(f.name.clone()).or_default().push(id);
                }
            }
            nodes.push(Node {
                file: fi,
                def: di,
                crate_key,
                in_src: class.in_src,
                fq,
                self_ty: f.self_ty.clone(),
                edges: Vec::new(),
                targets: Vec::new(),
            });
        }
    }

    // Resolve edges. Node ids are assigned file-by-file in fn order, so
    // walk the same way to know each node's file context.
    let mut id = 0usize;
    let mut edges_by_node: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nodes.len()];
    let mut targets_by_node: Vec<Vec<Vec<usize>>> = vec![Vec::new(); nodes.len()];
    for fd in files {
        let class = classify(&fd.rel);
        let fmods = file_mods(&fd.rel, class.in_src);
        let uses: BTreeMap<&str, &[String]> = fd
            .items
            .uses
            .iter()
            .map(|u| (u.alias.as_str(), u.path.as_slice()))
            .collect();
        for f in &fd.items.fns {
            let my = id;
            id += 1;
            if f.is_test {
                continue; // test fns are never callees of real code
            }
            let mut mods = fmods.clone();
            mods.extend(f.mods.iter().cloned());
            let ctx = Ctx {
                crate_key: class.crate_name.as_deref(),
                module: &mods,
                self_ty: f.self_ty.as_deref(),
                uses: &uses,
                globs: &fd.items.globs,
                free: &free,
                assoc: &assoc,
                by_name: &by_name,
                aliases: extern_aliases,
            };
            for c in &f.calls {
                let resolved = ctx.resolve(c);
                for &target in &resolved {
                    if target != my {
                        edges_by_node[my].push((target, c.line));
                    }
                }
                targets_by_node[my].push(resolved);
            }
        }
    }
    for ((n, e), t) in nodes.iter_mut().zip(edges_by_node).zip(targets_by_node) {
        n.edges = e;
        n.targets = t;
    }
    Graph { nodes }
}

/// Resolution context for one function's calls.
struct Ctx<'a> {
    crate_key: Option<&'a str>,
    module: &'a [String],
    self_ty: Option<&'a str>,
    uses: &'a BTreeMap<&'a str, &'a [String]>,
    globs: &'a [Vec<String>],
    free: &'a BTreeMap<(String, String, String), Vec<usize>>,
    assoc: &'a BTreeMap<(String, String), Vec<usize>>,
    by_name: &'a BTreeMap<String, Vec<usize>>,
    aliases: &'a BTreeMap<String, String>,
}

impl Ctx<'_> {
    fn resolve(&self, call: &Call) -> Vec<usize> {
        if call.is_method {
            let name = &call.path[0];
            // The caller's own impl wins (`self.helper()`), else any
            // workspace method of that name — capped, and never for
            // ubiquitous std-container names.
            if let Some(ty) = self.self_ty {
                if let Some(v) = self.assoc.get(&(ty.to_string(), name.clone())) {
                    return v.clone();
                }
            }
            if METHOD_NAME_STOPLIST.contains(&name.as_str()) {
                return Vec::new();
            }
            return match self.by_name.get(name) {
                Some(v) if v.len() <= METHOD_FANOUT_CAP => v.clone(),
                _ => Vec::new(),
            };
        }

        let segs = &call.path;
        if segs.len() == 1 {
            let name = &segs[0];
            // Same-module free fn, then `use` alias, then glob imports.
            if let Some(v) = self.free_in(self.crate_key, self.module, name) {
                return v;
            }
            if let Some(path) = self.uses.get(name.as_str()) {
                return self.resolve_abs(path);
            }
            for g in self.globs {
                let mut p = g.clone();
                p.push(name.clone());
                let hit = self.resolve_abs(&p);
                if !hit.is_empty() {
                    return hit;
                }
            }
            return Vec::new();
        }

        if segs[0] == "Self" {
            if let Some(ty) = self.self_ty {
                if let Some(v) = self
                    .assoc
                    .get(&(ty.to_string(), segs[segs.len() - 1].clone()))
                {
                    return v.clone();
                }
            }
            return Vec::new();
        }

        // Splice a `use` alias into the head, then resolve absolutely.
        if let Some(base) = self.uses.get(segs[0].as_str()) {
            let mut p: Vec<String> = base.to_vec();
            p.extend(segs[1..].iter().cloned());
            return self.resolve_abs(&p);
        }
        self.resolve_abs(segs)
    }

    /// Resolve a (possibly relative) multi-segment path.
    fn resolve_abs(&self, segs: &[String]) -> Vec<usize> {
        if segs.is_empty() {
            return Vec::new();
        }
        let head = segs[0].as_str();
        match head {
            // External: no edge. Forbidden std APIs are caught textually
            // by the token scan in whichever body names them.
            "std" | "core" | "alloc" => Vec::new(),
            "crate" => self.in_module(self.crate_key, &[], &segs[1..]),
            "self" => self.in_module(self.crate_key, self.module, &segs[1..]),
            "super" => {
                let mut base = self.module.to_vec();
                let mut rest = segs;
                while rest.first().map(String::as_str) == Some("super") {
                    base.pop();
                    rest = &rest[1..];
                }
                self.in_module(self.crate_key, &base, rest)
            }
            _ => {
                if let Some(dir) = self.aliases.get(head) {
                    return self.in_module(Some(dir.as_str()), &[], &segs[1..]);
                }
                // Relative: a child module of the current module, else a
                // crate-root module, else a plain type association.
                let hit = self.in_module(self.crate_key, self.module, segs);
                if !hit.is_empty() {
                    return hit;
                }
                self.in_module(self.crate_key, &[], segs)
            }
        }
    }

    /// Look up `rest` rooted at (`krate`, `base`): a free fn in the right
    /// module, or `Type::assoc_fn` when the penultimate segment is a type.
    fn in_module(&self, krate: Option<&str>, base: &[String], rest: &[String]) -> Vec<usize> {
        match rest {
            [] => Vec::new(),
            [name] => self.free_in(krate, base, name).unwrap_or_default(),
            [.., ty, name] => {
                let mut mods = base.to_vec();
                mods.extend(rest[..rest.len() - 1].iter().cloned());
                if let Some(v) = self.free_in(krate, &mods, name) {
                    return v;
                }
                if ty.chars().next().is_some_and(char::is_uppercase) {
                    if let Some(v) = self.assoc.get(&(ty.clone(), name.clone())) {
                        return v.clone();
                    }
                }
                Vec::new()
            }
        }
    }

    fn free_in(&self, krate: Option<&str>, mods: &[String], name: &str) -> Option<Vec<usize>> {
        let k = krate?;
        self.free
            .get(&(k.to_string(), mods.join("::"), name.to_string()))
            .cloned()
    }
}

/// Nodes matching `[callgraph] boundary` suffixes: taint neither starts in
/// nor flows through them.
fn boundary_nodes(g: &Graph, cfg: &Config) -> Vec<bool> {
    g.nodes
        .iter()
        .map(|n| {
            cfg.callgraph_boundary
                .iter()
                .any(|b| n.fq == *b || n.fq.ends_with(&format!("::{b}")))
        })
        .collect()
}

/// Whether a node is inside the tier's own enforcement scope (where the
/// token rules already police direct occurrences).
fn tier_covered(files: &[FileData], g: &Graph, id: usize, crates: &[String]) -> bool {
    let n = &g.nodes[id];
    let f = &files[n.file].items.fns[n.def];
    n.in_src
        && !f.is_test
        && n.crate_key
            .as_deref()
            .is_some_and(|c| crates.iter().any(|x| x == c))
}

/// One tier's taint computation and call-site emission.
fn taint_tier(
    files: &[FileData],
    g: &Graph,
    boundary: &[bool],
    rule: Rule,
    crates: &[String],
    patterns: &[(&str, bool)],
    out: &mut Analysis,
) {
    if crates.is_empty() || patterns.is_empty() {
        return;
    }

    // Direct sources: pattern matches inside a body, minus waived lines.
    let mut cause: Vec<Option<Cause>> = vec![None; g.nodes.len()];
    for (id, n) in g.nodes.iter().enumerate() {
        if boundary[id] {
            continue;
        }
        let fd = &files[n.file];
        let f = &fd.items.fns[n.def];
        if f.is_test {
            continue;
        }
        'body: for ln in f.start..=f.end.min(fd.lines.len().saturating_sub(1)) {
            for (pat, skip_test_lines) in patterns {
                if *skip_test_lines && fd.in_test.get(ln).copied().unwrap_or(false) {
                    continue;
                }
                if find_bounded(&fd.lines[ln].code, pat) {
                    match waiver_state(&fd.lines, ln, rule) {
                        (Waiver::Valid, at) => out.used_waivers.push((n.file, at, rule.name())),
                        _ => {
                            cause[id] = Some(Cause::Direct(pat.to_string(), ln));
                            break 'body;
                        }
                    }
                }
            }
        }
    }

    // Propagate backwards along call edges (reverse BFS; cycles terminate
    // via the visited `cause` slots).
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); g.nodes.len()];
    for (id, n) in g.nodes.iter().enumerate() {
        for (callee, _) in &n.edges {
            rev[*callee].push(id);
        }
    }
    let mut queue: VecDeque<usize> = cause
        .iter()
        .enumerate()
        .filter_map(|(i, c)| c.is_some().then_some(i))
        .collect();
    while let Some(h) = queue.pop_front() {
        for &caller in &rev[h] {
            if cause[caller].is_none() && !boundary[caller] {
                cause[caller] = Some(Cause::Via(h));
                queue.push_back(caller);
            }
        }
    }

    // Emit at the first tier-boundary-crossing call edge: a covered fn
    // calling a tainted fn that the token tiers do *not* police.
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (id, n) in g.nodes.iter().enumerate() {
        if !tier_covered(files, g, id, crates) {
            continue;
        }
        let fd = &files[n.file];
        for &(callee, line) in &n.edges {
            if cause[callee].is_none() || tier_covered(files, g, callee, crates) {
                continue;
            }
            match waiver_state(&fd.lines, line, rule) {
                (Waiver::Valid, at) => out.used_waivers.push((n.file, at, rule.name())),
                _ => {
                    if seen.insert((id, line)) {
                        out.diags.push(Diagnostic {
                            path: fd.rel.clone(),
                            line: line + 1,
                            rule,
                            msg: chain_msg(files, g, &cause, callee, rule),
                        });
                    }
                }
            }
        }
    }
}

/// Render the witness chain from a tainted callee down to its source.
fn chain_msg(
    files: &[FileData],
    g: &Graph,
    cause: &[Option<Cause>],
    start: usize,
    rule: Rule,
) -> String {
    let mut msg = format!("call into `{}` reaches", g.nodes[start].fq);
    let mut hops = vec![start];
    let mut cur = start;
    loop {
        match &cause[cur] {
            Some(Cause::Via(next)) => {
                cur = *next;
                hops.push(cur);
                if hops.len() > CHAIN_CAP {
                    msg.push_str(" a forbidden API (chain truncated)");
                    break;
                }
            }
            Some(Cause::Direct(pat, ln)) => {
                let n = &g.nodes[cur];
                msg.push_str(&format!(" `{pat}` ({}:{})", files[n.file].rel, ln + 1));
                break;
            }
            None => break, // unreachable: only tainted nodes get here
        }
    }
    if hops.len() > 1 {
        let via: Vec<&str> = hops[1..]
            .iter()
            .take(CHAIN_CAP - 1)
            .map(|&h| g.nodes[h].fq.as_str())
            .collect();
        msg.push_str(&format!(" via `{}`", via.join("` → `")));
    }
    msg.push_str(&format!(
        " — {} transitively; fix the source, route it through a `[callgraph] boundary` fn, or waive with `// lint: allow({})`",
        match rule {
            Rule::SansIo => "the engine loses sans-io purity",
            Rule::Determinism => "replay loses byte-identical determinism",
            _ => "the tier invariant breaks",
        },
        rule.name()
    ));
    msg
}

/// Tier 5, call-level rules: mailbox confinement outside the gateway and
/// the gateway's audited shard-state surface.
fn shard_isolation(files: &[FileData], g: &Graph, cfg: &Config, out: &mut Analysis) {
    if cfg.shard_boundary_files.is_empty() {
        return;
    }
    let is_boundary_file = |rel: &str| cfg.shard_boundary_files.iter().any(|f| f == rel);
    // Shard-state methods: every parsed method of the listed types.
    let state_methods: BTreeSet<(String, String)> = g
        .nodes
        .iter()
        .filter_map(|n| {
            let ty = n.self_ty.clone()?;
            cfg.shard_state_types.contains(&ty).then(|| {
                let f = &files[n.file].items.fns[n.def];
                (ty, f.name.clone())
            })
        })
        .collect();

    for n in &g.nodes {
        let fd = &files[n.file];
        let f = &fd.items.fns[n.def];
        if f.is_test || !n.in_src {
            continue;
        }
        let in_gateway = is_boundary_file(&fd.rel);
        let crate_in = |list: &[String]| {
            n.crate_key
                .as_deref()
                .is_some_and(|c| list.iter().any(|x| x == c))
        };

        // (a) mailbox API confinement: only the gateway crosses shards.
        if !in_gateway && crate_in(&cfg.shard_crates) {
            for c in &f.calls {
                let name = c.path.last().expect("calls have at least one segment");
                if cfg.shard_mailbox_api.iter().any(|m| m == name) {
                    match waiver_state(&fd.lines, c.line, Rule::ShardIsolation) {
                        (Waiver::Valid, at) => {
                            out.used_waivers.push((n.file, at, Rule::ShardIsolation.name()))
                        }
                        _ => out.diags.push(Diagnostic {
                            path: fd.rel.clone(),
                            line: c.line + 1,
                            rule: Rule::ShardIsolation,
                            msg: format!(
                                "cross-shard mailbox call `{name}` outside the gateway — only {} may move state between shards",
                                cfg.shard_boundary_files.join(", ")
                            ),
                        }),
                    }
                }
            }
        }

        // (b) gateway audit: shard-state types only via the allowed surface.
        if in_gateway {
            for (ci, c) in f.calls.iter().enumerate() {
                let name = c.path.last().expect("calls have at least one segment");
                let resolved: &[usize] = n.targets.get(ci).map(Vec::as_slice).unwrap_or(&[]);
                let touches_state = resolved.iter().any(|&t| {
                    g.nodes[t]
                        .self_ty
                        .as_deref()
                        .is_some_and(|ty| cfg.shard_state_types.iter().any(|s| s == ty))
                }) || c
                    .path
                    .len()
                    .checked_sub(2)
                    .map(|i| cfg.shard_state_types.contains(&c.path[i]))
                    .unwrap_or(false);
                if !touches_state || cfg.shard_boundary_allowed.iter().any(|a| a == name) {
                    continue;
                }
                let ty = state_methods
                    .iter()
                    .find(|(_, m)| m == name)
                    .map(|(t, _)| t.as_str())
                    .unwrap_or("shard state");
                match waiver_state(&fd.lines, c.line, Rule::ShardIsolation) {
                    (Waiver::Valid, at) => {
                        out.used_waivers.push((n.file, at, Rule::ShardIsolation.name()))
                    }
                    _ => out.diags.push(Diagnostic {
                        path: fd.rel.clone(),
                        line: c.line + 1,
                        rule: Rule::ShardIsolation,
                        msg: format!(
                            "gateway touches `{ty}::{name}` outside the audited surface — extend [shard_isolation] boundary_allowed_calls after review"
                        ),
                    }),
                }
            }
        }
    }
}
