//! `lint.toml` loading.
//!
//! The build is fully offline, so rather than depending on a TOML crate the
//! lint parses the small subset it needs itself: `[section]` headers,
//! `key = "string"`, `key = true/false`, and `key = [ "a", "b" ]` arrays
//! (single- or multi-line), with `#` comments. Anything outside that subset
//! is a hard error — the config is checked in, so failing loudly beats
//! guessing.

use std::collections::BTreeMap;
use std::fmt;

/// A parse error with the offending `lint.toml` line.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line in `lint.toml`.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ConfigError {}

/// A parsed value: everything the lint config needs is strings or lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `key = "…"`.
    Str(String),
    /// `key = [ "…", … ]`.
    List(Vec<String>),
    /// `key = true` / `false`.
    Bool(bool),
}

/// Raw section → key → value mapping (BTreeMap so iteration — and thus
/// diagnostics and the JSON report — is deterministic).
pub type Sections = BTreeMap<String, BTreeMap<String, Value>>;

/// The lint configuration, shaped for the rules.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Crate directory names under `crates/` bound by the sans-io rule.
    pub sans_io_crates: Vec<String>,
    /// Fully-spelled API paths those crates may not reference.
    pub sans_io_forbidden: Vec<String>,
    /// Crate directory names bound by the determinism rule.
    pub determinism_crates: Vec<String>,
    /// Wall-clock / ambient-randomness APIs denied there.
    pub determinism_forbidden: Vec<String>,
    /// Default-hasher collections denied there.
    pub determinism_hash_collections: Vec<String>,
    /// Repo-relative `.rs` files allowed to contain `unsafe` (each still
    /// needs a `// SAFETY:` comment per occurrence).
    pub unsafe_allow_files: Vec<String>,
    /// Crate directory names whose roots may skip `#![forbid(unsafe_code)]`
    /// (they must justify it, e.g. `#![deny]` + a scoped module allow).
    pub unsafe_allow_crates: Vec<String>,
    /// Crate directory names bound by the panic-discipline rule.
    pub panic_crates: Vec<String>,
    /// Call patterns denied on the data path (`.unwrap()`, `panic!`, …).
    pub panic_deny: Vec<String>,
    /// Repo-relative path prefixes never linted (fixtures, target).
    pub exclude: Vec<String>,
    /// Run the interprocedural taint pass for the sans-io and determinism
    /// tiers (`[callgraph] enabled`).
    pub callgraph_enabled: bool,
    /// Fully-qualified function suffixes (`stack::wallclock::now`) that act
    /// as sanctioned host boundaries: taint neither starts in nor flows
    /// through them. Each entry is a reviewed exception — comment it.
    pub callgraph_boundary: Vec<String>,
    /// Repo-relative files forming the shard gateway (tier 5): the only
    /// place worker state may be touched across the shard boundary.
    pub shard_boundary_files: Vec<String>,
    /// Crates whose `src/` may call the mailbox API only from the gateway.
    pub shard_crates: Vec<String>,
    /// Crates whose `src/` may use `std::sync`/`std::thread` only in the
    /// gateway files.
    pub shard_sync_crates: Vec<String>,
    /// Patterns denied outside the gateway in `sync_crates`.
    pub shard_sync_forbidden: Vec<String>,
    /// Cross-shard mailbox method names, callable only from the gateway.
    pub shard_mailbox_api: Vec<String>,
    /// Types whose methods constitute direct shard state access.
    pub shard_state_types: Vec<String>,
    /// Audited method surface the gateway itself may call on those types.
    pub shard_boundary_allowed: Vec<String>,
}

impl Config {
    /// Parse a `lint.toml` string.
    pub fn parse(src: &str) -> Result<Config, ConfigError> {
        let sections = parse_sections(src)?;
        let mut cfg = Config::default();
        let list = |sec: &str, key: &str| -> Vec<String> {
            match sections.get(sec).and_then(|s| s.get(key)) {
                Some(Value::List(v)) => v.clone(),
                Some(Value::Str(s)) => vec![s.clone()],
                _ => Vec::new(),
            }
        };
        cfg.sans_io_crates = list("sans_io", "crates");
        cfg.sans_io_forbidden = list("sans_io", "forbidden");
        cfg.determinism_crates = list("determinism", "crates");
        cfg.determinism_forbidden = list("determinism", "forbidden");
        cfg.determinism_hash_collections = list("determinism", "hash_collections");
        cfg.unsafe_allow_files = list("unsafe_hygiene", "allow_files");
        cfg.unsafe_allow_crates = list("unsafe_hygiene", "allow_crates");
        cfg.panic_crates = list("panic_discipline", "crates");
        cfg.panic_deny = list("panic_discipline", "deny");
        cfg.exclude = list("lint", "exclude");
        cfg.callgraph_enabled = matches!(
            sections.get("callgraph").and_then(|s| s.get("enabled")),
            Some(Value::Bool(true))
        );
        cfg.callgraph_boundary = list("callgraph", "boundary");
        cfg.shard_boundary_files = list("shard_isolation", "boundary");
        cfg.shard_crates = list("shard_isolation", "crates");
        cfg.shard_sync_crates = list("shard_isolation", "sync_crates");
        cfg.shard_sync_forbidden = list("shard_isolation", "sync_forbidden");
        cfg.shard_mailbox_api = list("shard_isolation", "mailbox_api");
        cfg.shard_state_types = list("shard_isolation", "shard_state_types");
        cfg.shard_boundary_allowed = list("shard_isolation", "boundary_allowed_calls");
        Ok(cfg)
    }
}

fn parse_sections(src: &str) -> Result<Sections, ConfigError> {
    let mut out: Sections = BTreeMap::new();
    let mut current = String::new();
    let mut lines = src.lines().enumerate().peekable();

    while let Some((n, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            current = name.trim().to_string();
            out.entry(current.clone()).or_default();
            continue;
        }
        let Some((key, val)) = line.split_once('=') else {
            return Err(err(n, "expected `key = value` or `[section]`"));
        };
        let key = key.trim().to_string();
        let mut val = val.trim().to_string();
        // Multi-line array: keep consuming until the closing bracket.
        while val.starts_with('[') && !balanced(&val) {
            let Some((_, cont)) = lines.next() else {
                return Err(err(n, "unterminated array"));
            };
            val.push(' ');
            val.push_str(strip_comment(cont).trim());
        }
        let parsed = parse_value(&val).map_err(|m| err(n, &m))?;
        if current.is_empty() {
            return Err(err(n, "key outside a [section]"));
        }
        out.entry(current.clone()).or_default().insert(key, parsed);
    }
    Ok(out)
}

fn err(n: usize, msg: &str) -> ConfigError {
    ConfigError {
        line: n + 1,
        msg: msg.to_string(),
    }
}

/// Strip a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// True when the `[` of an inline array is closed on the same logical line.
fn balanced(val: &str) -> bool {
    let mut in_str = false;
    let mut depth = 0i32;
    for c in val.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_value(val: &str) -> Result<Value, String> {
    if val == "true" {
        return Ok(Value::Bool(true));
    }
    if val == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(s) = parse_str(val) {
        return Ok(Value::Str(s));
    }
    if let Some(body) = val.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_top(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(
                parse_str(part).ok_or_else(|| format!("expected string in array, got `{part}`"))?,
            );
        }
        return Ok(Value::List(items));
    }
    Err(format!("unsupported value `{val}`"))
}

fn parse_str(val: &str) -> Option<String> {
    let inner = val.strip_prefix('"')?.strip_suffix('"')?;
    // The config never needs escapes; reject rather than mis-parse.
    if inner.contains('"') || inner.contains('\\') {
        return None;
    }
    Some(inner.to_string())
}

/// Split an array body on commas outside strings.
fn split_top(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    parts.push(cur);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_arrays() {
        let cfg = Config::parse(
            "# top comment\n[sans_io]\ncrates = [\"tcp\", \"luna\"] # trailing\nforbidden = [\n  \"std::net\", # why\n  \"Instant::now\",\n]\n\n[panic_discipline]\ncrates = [\"tcp\"]\ndeny = [\".unwrap()\"]\n",
        )
        .expect("parses");
        assert_eq!(cfg.sans_io_crates, ["tcp", "luna"]);
        assert_eq!(cfg.sans_io_forbidden, ["std::net", "Instant::now"]);
        assert_eq!(cfg.panic_deny, [".unwrap()"]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Config::parse("not toml at all").is_err());
        assert!(Config::parse("[s]\nkey = {inline = 1}").is_err());
    }

    #[test]
    fn callgraph_and_shard_sections() {
        let cfg = Config::parse(
            "[callgraph]\nenabled = true\nboundary = [\"stack::wallclock::now\"]\n\n[shard_isolation]\nboundary = [\"crates/stack/src/sharded.rs\"]\ncrates = [\"stack\", \"bench\"]\nsync_crates = [\"stack\"]\nsync_forbidden = [\"std::sync\"]\nmailbox_api = [\"inject_remote\"]\nshard_state_types = [\"Testbed\"]\nboundary_allowed_calls = [\"run_until\"]\n",
        )
        .expect("parses");
        assert!(cfg.callgraph_enabled);
        assert_eq!(cfg.callgraph_boundary, ["stack::wallclock::now"]);
        assert_eq!(cfg.shard_boundary_files, ["crates/stack/src/sharded.rs"]);
        assert_eq!(cfg.shard_crates, ["stack", "bench"]);
        assert_eq!(cfg.shard_sync_crates, ["stack"]);
        assert_eq!(cfg.shard_mailbox_api, ["inject_remote"]);
        assert_eq!(cfg.shard_boundary_allowed, ["run_until"]);
    }

    #[test]
    fn callgraph_defaults_off() {
        let cfg = Config::parse("[sans_io]\ncrates = [\"tcp\"]\n").expect("parses");
        assert!(!cfg.callgraph_enabled);
        assert!(cfg.callgraph_boundary.is_empty());
    }

    #[test]
    fn hash_in_string_is_not_comment() {
        let cfg = Config::parse("[lint]\nexclude = [\"a#b\"]\n").expect("parses");
        assert_eq!(cfg.exclude, ["a#b"]);
    }
}
