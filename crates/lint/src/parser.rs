//! A lightweight Rust *item* parser on top of the [`lexer`](crate::lexer).
//!
//! The call-graph tiers need three things per file, and only three:
//! which functions are defined (with enough path context to name them),
//! which names the file imports, and which calls each function body makes.
//! This module extracts exactly that from the lexer's code channel — it is
//! not a Rust parser and deliberately ignores everything else (types,
//! generics, expressions, patterns).
//!
//! What it understands:
//!
//! * `mod name { … }` nesting (file-level module structure comes from the
//!   path layout, handled by [`graph`](crate::graph));
//! * `impl Type { … }` / `impl Trait for Type { … }` / `trait Name { … }`
//!   blocks — functions inside are recorded as `Type::name`;
//! * `fn name(...) { … }` items, including the span of their bodies, with
//!   `#[cfg(test)]`-region / `tests`-path classification;
//! * `use` trees, flattened to `alias → path` pairs (globs kept separately);
//! * call expressions inside bodies: `path::to::f(…)`, `f(…)`, `x.m(…)`
//!   and `Type::assoc(…)`, with `::<turbofish>` skipped.
//!
//! Known, deliberate approximations (see DESIGN.md §8 for the full list):
//! function *references* passed without parentheses (`iter.map(helper)`)
//! do not create call records, macro names are not calls (their argument
//! tokens are scanned normally), and `use` items are collected file-wide
//! rather than per-scope. Taint *sources* are token-matched over whole
//! bodies, so these blind spots cannot hide a forbidden API inside the
//! function that uses it — they can only shorten the call graph.

use crate::lexer::Line;

/// One call expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Path segments as written (`["ebs_sim", "SimTime", "from_nanos"]`,
    /// `["helper"]`); method calls carry just the method name.
    pub path: Vec<String>,
    /// True for `.name(…)` receiver calls.
    pub is_method: bool,
    /// 0-based line of the call head.
    pub line: usize,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Inline-`mod` path inside the file (the file's own module path is
    /// prepended by the graph builder).
    pub mods: Vec<String>,
    /// Enclosing `impl`/`trait` type name, if any.
    pub self_ty: Option<String>,
    /// 0-based line of the `fn` keyword.
    pub start: usize,
    /// 0-based line of the body's closing brace (== `start` for bodyless
    /// trait/extern declarations).
    pub end: usize,
    /// Inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// Calls made by the body (nested closures included; nested `fn`
    /// items get their own records).
    pub calls: Vec<Call>,
}

/// A flattened `use` mapping: `alias` names `path` in this file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseItem {
    /// The name in scope (last segment, or the `as` rename).
    pub alias: String,
    /// Full path segments.
    pub path: Vec<String>,
}

/// Everything the graph builder needs from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Function items in definition order.
    pub fns: Vec<FnDef>,
    /// Flattened `use` items (file-wide).
    pub uses: Vec<UseItem>,
    /// `use path::*;` glob imports (path segments).
    pub globs: Vec<Vec<String>>,
}

/// A token of the code channel.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// `::`
    PathSep,
    /// Single punctuation character (`{`, `}`, `(`, `.`, `<`, …).
    Punct(char),
}

/// Tokenize the code channels of `lines` into `(line, token)` pairs.
fn tokenize(lines: &[Line]) -> Vec<(usize, Tok)> {
    let mut toks = Vec::new();
    for (n, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push((n, Tok::Ident(chars[start..i].iter().collect())));
            } else if c == ':' && chars.get(i + 1) == Some(&':') {
                toks.push((n, Tok::PathSep));
                i += 2;
            } else {
                toks.push((n, Tok::Punct(c)));
                i += 1;
            }
        }
    }
    toks
}

/// Scope kinds the parser tracks through brace nesting.
#[derive(Debug)]
enum Scope {
    /// `mod name {`
    Mod(String),
    /// `impl Type {` / `impl Trait for Type {` / `trait Name {`
    Ty(String),
    /// Any other `{` (blocks, closures, struct literals, …); `fn` bodies
    /// are consumed whole by `parse_fn` and never sit on this stack.
    Block,
}

/// Keywords that can never head a call path. `crate`, `super`, `self` and
/// `Self` are *allowed* heads (`crate::f()`, `Self::new()`).
fn is_call_stopword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "fn"
            | "pub"
            | "use"
            | "mod"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "union"
            | "where"
            | "unsafe"
            | "async"
            | "await"
            | "dyn"
            | "in"
            | "as"
            | "const"
            | "static"
            | "type"
            | "true"
            | "false"
            | "extern"
    )
}

/// Parse one file's items. `in_test` is the lexer's `#[cfg(test)]` region
/// map; `test_by_path` marks whole-file test locations (`tests/`,
/// `benches/`, `examples/`).
pub fn parse(lines: &[Line], in_test: &[bool], test_by_path: bool) -> FileItems {
    let toks = tokenize(lines);
    let mut out = FileItems::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut i = 0;

    while i < toks.len() {
        match &toks[i].1 {
            Tok::Punct('{') => {
                scopes.push(Scope::Block);
                i += 1;
            }
            Tok::Punct('}') => {
                scopes.pop();
                i += 1;
            }
            Tok::Ident(kw) if kw == "use" => {
                i = parse_use(&toks, i + 1, &mut out);
            }
            Tok::Ident(kw) if kw == "mod" => {
                // `mod name {` opens a scope; `mod name;` is a file-level
                // child handled by the path layout.
                if let Some((_, Tok::Ident(name))) = toks.get(i + 1) {
                    if let Some((_, Tok::Punct('{'))) = toks.get(i + 2) {
                        scopes.push(Scope::Mod(name.clone()));
                        i += 3;
                        continue;
                    }
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "impl" => {
                let (ty, next) = parse_impl_header(&toks, i + 1);
                if let Some((_, Tok::Punct('{'))) = toks.get(next) {
                    scopes.push(match ty {
                        Some(t) => Scope::Ty(t),
                        None => Scope::Block,
                    });
                    i = next + 1;
                } else {
                    i = next.max(i + 1);
                }
            }
            Tok::Ident(kw) if kw == "trait" => {
                if let Some((_, Tok::Ident(name))) = toks.get(i + 1) {
                    let name = name.clone();
                    let mut j = i + 2;
                    // Skip generics / supertrait bounds to the body brace.
                    while j < toks.len() && !matches!(toks[j].1, Tok::Punct('{') | Tok::Punct(';'))
                    {
                        j += 1;
                    }
                    if let Some((_, Tok::Punct('{'))) = toks.get(j) {
                        scopes.push(Scope::Ty(name));
                        i = j + 1;
                        continue;
                    }
                    i = j;
                } else {
                    i += 1;
                }
            }
            Tok::Ident(kw) if kw == "fn" => {
                i = parse_fn(&toks, i, in_test, test_by_path, &mut scopes, &mut out);
            }
            _ => i += 1,
        }
    }
    out
}

/// Parse an `impl` header starting after the `impl` keyword. Returns the
/// self type (the path after `for` if present, else the first path) and
/// the index of the body `{` (or wherever scanning stopped).
fn parse_impl_header(toks: &[(usize, Tok)], mut i: usize) -> (Option<String>, usize) {
    let mut first: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while i < toks.len() {
        match &toks[i].1 {
            Tok::Punct('{') | Tok::Punct(';') => break,
            Tok::Punct('<') => i = skip_angles(toks, i),
            Tok::Ident(s) if s == "for" => {
                saw_for = true;
                i += 1;
            }
            Tok::Ident(s) if s == "where" => {
                // `where` clauses may contain `for<'a>`; stop collecting.
                while i < toks.len() && !matches!(toks[i].1, Tok::Punct('{')) {
                    i += 1;
                }
            }
            Tok::Ident(s) => {
                // Track the *last* identifier of each path so `a::b::Type`
                // yields `Type`.
                let slot = if saw_for { &mut after_for } else { &mut first };
                if slot.is_none() || matches!(toks.get(i.wrapping_sub(1)), Some((_, Tok::PathSep)))
                {
                    *slot = Some(s.clone());
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    (after_for.or(first), i)
}

/// Skip a balanced `<…>` group starting at the `<` at `toks[i]`.
fn skip_angles(toks: &[(usize, Tok)], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        match toks[i].1 {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            // `(` in generic bounds (Fn traits); skip their groups too.
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parse a `fn` item at `toks[i]` (pointing at the `fn` keyword): record
/// the definition and collect the body's calls. Returns the index after
/// the body (or after `;` for bodyless declarations).
fn parse_fn(
    toks: &[(usize, Tok)],
    i: usize,
    in_test: &[bool],
    test_by_path: bool,
    scopes: &mut Vec<Scope>,
    out: &mut FileItems,
) -> usize {
    let start_line = toks[i].0;
    let Some((_, Tok::Ident(name))) = toks.get(i + 1) else {
        return i + 1; // `fn` in a type position (`fn(u8) -> u8`); skip.
    };
    let name = name.clone();

    // Scan the signature to the body `{` or a terminating `;`, skipping
    // generics and any `where` clause. Parens/brackets in the signature
    // can contain nested parens (closure types); track their depth.
    let mut j = i + 2;
    let mut paren = 0i32;
    loop {
        match toks.get(j) {
            None => return j,
            Some((_, Tok::Punct('<'))) if paren == 0 => {
                j = skip_angles(toks, j);
                continue;
            }
            Some((_, Tok::Punct('('))) | Some((_, Tok::Punct('['))) => paren += 1,
            Some((_, Tok::Punct(')'))) | Some((_, Tok::Punct(']'))) => paren -= 1,
            Some((_, Tok::Punct(';'))) if paren == 0 => {
                // Declaration without a body (trait method, extern).
                let mods: Vec<String> = scopes
                    .iter()
                    .filter_map(|s| match s {
                        Scope::Mod(m) => Some(m.clone()),
                        _ => None,
                    })
                    .collect();
                let self_ty = scopes.iter().rev().find_map(|s| match s {
                    Scope::Ty(t) => Some(t.clone()),
                    _ => None,
                });
                out.fns.push(FnDef {
                    name,
                    mods,
                    self_ty,
                    start: start_line,
                    end: start_line,
                    is_test: test_by_path || in_test.get(start_line).copied().unwrap_or(false),
                    calls: Vec::new(),
                });
                return j + 1;
            }
            Some((_, Tok::Punct('{'))) if paren == 0 => break,
            _ => {}
        }
        j += 1;
    }

    // `j` points at the body `{`. Collect calls to the matching `}`.
    let mods: Vec<String> = scopes
        .iter()
        .filter_map(|s| match s {
            Scope::Mod(m) => Some(m.clone()),
            _ => None,
        })
        .collect();
    let self_ty = scopes.iter().rev().find_map(|s| match s {
        Scope::Ty(t) => Some(t.clone()),
        _ => None,
    });
    let fn_idx = out.fns.len();
    out.fns.push(FnDef {
        name,
        mods,
        self_ty,
        start: start_line,
        end: start_line,
        is_test: test_by_path || in_test.get(start_line).copied().unwrap_or(false),
        calls: Vec::new(),
    });

    let mut depth = 0i32;
    let mut k = j;
    while k < toks.len() {
        match &toks[k].1 {
            Tok::Punct('{') => {
                depth += 1;
                k += 1;
            }
            Tok::Punct('}') => {
                depth -= 1;
                k += 1;
                if depth == 0 {
                    break;
                }
            }
            // Nested `fn` item: parse it recursively as its own record so
            // its calls are attributed to it, not to us.
            Tok::Ident(kw) if kw == "fn" => {
                scopes.push(Scope::Block); // placeholder; inner fn reads mods/ty only
                k = parse_fn(toks, k, in_test, test_by_path, scopes, out);
                scopes.pop();
            }
            // Method call: `.name(` or `.name::<T>(`.
            Tok::Punct('.') => {
                if let Some((line, Tok::Ident(m))) = toks.get(k + 1) {
                    let mut n = k + 2;
                    if matches!(toks.get(n), Some((_, Tok::PathSep)))
                        && matches!(toks.get(n + 1), Some((_, Tok::Punct('<'))))
                    {
                        n = skip_angles(toks, n + 1);
                    }
                    if matches!(toks.get(n), Some((_, Tok::Punct('(')))) {
                        out.fns[fn_idx].calls.push(Call {
                            path: vec![m.clone()],
                            is_method: true,
                            line: *line,
                        });
                    }
                    k += 2;
                } else {
                    k += 1;
                }
            }
            Tok::Ident(id) if !is_call_stopword(id) => {
                // A path: Ident (:: Ident | ::<…>)* — a call if `(` follows.
                let head_line = toks[k].0;
                let mut path = vec![id.clone()];
                let mut n = k + 1;
                loop {
                    if matches!(toks.get(n), Some((_, Tok::PathSep))) {
                        if matches!(toks.get(n + 1), Some((_, Tok::Punct('<')))) {
                            n = skip_angles(toks, n + 1);
                            continue;
                        }
                        if let Some((_, Tok::Ident(seg))) = toks.get(n + 1) {
                            path.push(seg.clone());
                            n += 2;
                            continue;
                        }
                    }
                    break;
                }
                if matches!(toks.get(n), Some((_, Tok::Punct('(')))) {
                    out.fns[fn_idx].calls.push(Call {
                        path,
                        is_method: false,
                        line: head_line,
                    });
                }
                // Jump past the whole path so `a::b::f(…)` is recorded
                // once, not once per suffix. Only path segments and
                // turbofish groups are skipped — nothing callable hides
                // in there.
                k = n.max(k + 1);
            }
            _ => k += 1,
        }
        // Track the fn's end line as we go.
        if let Some(t) = toks.get(k.saturating_sub(1)) {
            out.fns[fn_idx].end = t.0;
        }
    }
    k
}

/// Parse a `use` declaration starting after the `use` keyword; flatten the
/// tree into `alias → path` items. Returns the index past the `;`.
fn parse_use(toks: &[(usize, Tok)], mut i: usize, out: &mut FileItems) -> usize {
    let mut prefix: Vec<String> = Vec::new();
    // Stack of saved prefixes for nested `{` groups.
    let mut stack: Vec<Vec<String>> = Vec::new();
    let mut pending_alias: Option<String> = None;

    // Emit the item currently accumulated in `prefix`.
    fn emit(out: &mut FileItems, prefix: &[String], alias: Option<String>, depth: usize) {
        if prefix.len() <= depth && alias.is_none() {
            return; // nothing new since the group opened
        }
        if let Some(last) = prefix.last() {
            if last == "self" {
                // `use a::b::{self}` names `b`.
                let path: Vec<String> = prefix[..prefix.len() - 1].to_vec();
                if let Some(name) = path.last().cloned() {
                    out.uses.push(UseItem {
                        alias: alias.unwrap_or(name),
                        path,
                    });
                }
                return;
            }
            out.uses.push(UseItem {
                alias: alias.unwrap_or_else(|| last.clone()),
                path: prefix.to_vec(),
            });
        }
    }

    while i < toks.len() {
        match &toks[i].1 {
            Tok::Ident(s) if s == "as" => {
                if let Some((_, Tok::Ident(a))) = toks.get(i + 1) {
                    pending_alias = Some(a.clone());
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Tok::Ident(s) => {
                prefix.push(s.clone());
                i += 1;
            }
            Tok::PathSep => i += 1,
            Tok::Punct('{') => {
                stack.push(prefix.clone());
                i += 1;
            }
            Tok::Punct(',') => {
                let depth = stack.last().map(|p| p.len()).unwrap_or(0);
                emit(out, &prefix, pending_alias.take(), depth);
                prefix = stack.last().cloned().unwrap_or_default();
                i += 1;
            }
            Tok::Punct('}') => {
                let depth = stack.last().map(|p| p.len()).unwrap_or(0);
                emit(out, &prefix, pending_alias.take(), depth);
                prefix = stack.pop().unwrap_or_default();
                i += 1;
            }
            Tok::Punct('*') => {
                out.globs.push(prefix.clone());
                prefix = stack.last().cloned().unwrap_or_default();
                i += 1;
            }
            Tok::Punct(';') => {
                if stack.is_empty() {
                    emit(out, &prefix, pending_alias.take(), 0);
                }
                return i + 1;
            }
            Tok::Punct('#') => i += 1, // stray attribute punctuation
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_regions};

    fn items(src: &str) -> FileItems {
        let lines = lex(src);
        let t = test_regions(&lines);
        parse(&lines, &t, false)
    }

    #[test]
    fn fns_and_modules_and_impls() {
        let src = "fn top() {}\nmod inner {\n  impl Widget {\n    pub fn poke(&self) {}\n  }\n  fn free() {}\n}\n";
        let it = items(src);
        let names: Vec<(String, Vec<String>, Option<String>)> = it
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.mods.clone(), f.self_ty.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("top".into(), vec![], None),
                ("poke".into(), vec!["inner".into()], Some("Widget".into())),
                ("free".into(), vec!["inner".into()], None),
            ]
        );
    }

    #[test]
    fn impl_trait_for_type_records_the_type() {
        let it = items("impl<T: Clone> Iterator for Chunks<T> {\n  fn next(&mut self) {}\n}\n");
        assert_eq!(it.fns[0].self_ty.as_deref(), Some("Chunks"));
    }

    #[test]
    fn calls_plain_path_method_and_assoc() {
        let it = items(
            "fn f() {\n  helper();\n  a::b::deep(1);\n  SimTime::from_nanos(3);\n  x.poll(now);\n  y.collect::<Vec<_>>();\n}\n",
        );
        let calls = &it.fns[0].calls;
        let paths: Vec<(Vec<String>, bool)> = calls
            .iter()
            .map(|c| (c.path.clone(), c.is_method))
            .collect();
        assert_eq!(
            paths,
            vec![
                (vec!["helper".into()], false),
                (vec!["a".into(), "b".into(), "deep".into()], false),
                (vec!["SimTime".into(), "from_nanos".into()], false),
                (vec!["poll".into()], true),
                (vec!["collect".into()], true),
            ]
        );
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let it = items(
            "fn f() {\n  format!(\"x\");\n  if (a) { return; }\n  matches!(e, E::V(_));\n}\n",
        );
        // `E::V(` inside matches! parses as an assoc-path call record —
        // it resolves to nothing later. format!/if/return never record.
        let heads: Vec<String> = it.fns[0].calls.iter().map(|c| c.path.join("::")).collect();
        assert!(!heads
            .iter()
            .any(|h| h == "format" || h == "if" || h == "return"));
    }

    #[test]
    fn use_trees_flatten() {
        let it = items(
            "use ebs_sim::{SimTime, rng as prng, queue::EventQueue};\nuse crate::testbed::*;\nuse std::collections::BTreeMap;\n",
        );
        let got: Vec<(String, String)> = it
            .uses
            .iter()
            .map(|u| (u.alias.clone(), u.path.join("::")))
            .collect();
        assert!(got.contains(&("SimTime".into(), "ebs_sim::SimTime".into())));
        assert!(got.contains(&("prng".into(), "ebs_sim::rng".into())));
        assert!(got.contains(&("EventQueue".into(), "ebs_sim::queue::EventQueue".into())));
        assert!(got.contains(&("BTreeMap".into(), "std::collections::BTreeMap".into())));
        assert_eq!(
            it.globs,
            vec![vec!["crate".to_string(), "testbed".to_string()]]
        );
    }

    #[test]
    fn use_self_in_group_names_the_module() {
        let it = items("use a::b::{self, c};\n");
        let got: Vec<(String, String)> = it
            .uses
            .iter()
            .map(|u| (u.alias.clone(), u.path.join("::")))
            .collect();
        assert!(got.contains(&("b".into(), "a::b".into())));
        assert!(got.contains(&("c".into(), "a::b::c".into())));
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n  fn t() { real(); }\n}\n";
        let it = items(src);
        assert!(!it.fns[0].is_test);
        assert!(it.fns[1].is_test);
    }

    #[test]
    fn closures_attribute_calls_to_the_enclosing_fn() {
        let it = items("fn f() {\n  run(|| { helper(); });\n  s.spawn(move || inner());\n}\n");
        let heads: Vec<String> = it.fns[0].calls.iter().map(|c| c.path.join("::")).collect();
        assert!(heads.contains(&"helper".to_string()));
        assert!(heads.contains(&"inner".to_string()));
    }

    #[test]
    fn bodyless_trait_methods_record_no_calls() {
        let it = items("trait T {\n  fn decl(&self);\n  fn dflt(&self) { decl_helper(); }\n}\n");
        assert_eq!(it.fns[0].name, "decl");
        assert!(it.fns[0].calls.is_empty());
        assert_eq!(it.fns[1].name, "dflt");
        assert_eq!(it.fns[1].calls.len(), 1);
    }

    #[test]
    fn fn_pointer_types_do_not_derail() {
        let it = items("fn f(cb: fn(u8) -> u8) { cb(1); g(); }\n");
        assert_eq!(it.fns.len(), 1);
        let heads: Vec<String> = it.fns[0].calls.iter().map(|c| c.path.join("::")).collect();
        assert!(heads.contains(&"cb".to_string()));
        assert!(heads.contains(&"g".to_string()));
    }
}
