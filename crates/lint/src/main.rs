//! `ebs-lint` CLI.
//!
//! ```text
//! cargo run -p ebs-lint -- --check            # gate: nonzero exit on violations
//! cargo run -p ebs-lint --                    # report only (always exit 0)
//! cargo run -p ebs-lint -- --json out.json    # also write the JSON report there
//! ```
//!
//! The workspace root is located by walking up from the current directory
//! to the nearest `lint.toml` (override with `--root`); the config path
//! defaults to `<root>/lint.toml` (override with `--config`).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use ebs_lint::{config::Config, find_root, lint_tree, report};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("ebs-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut check = false;
    let mut json: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--json" => json = Some(args.next().ok_or("--json needs a path")?.into()),
            "--root" => root = Some(args.next().ok_or("--root needs a path")?.into()),
            "--config" => config = Some(args.next().ok_or("--config needs a path")?.into()),
            "--help" | "-h" => {
                println!(
                    "ebs-lint: sans-io / determinism / unsafe-hygiene / panic-discipline checks\n\
                     usage: ebs-lint [--check] [--json PATH] [--root DIR] [--config PATH]"
                );
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)").into()),
        }
    }

    let root = match root {
        Some(r) => r,
        None => find_root(&std::env::current_dir()?)
            .ok_or("no lint.toml found walking up from the current directory")?,
    };
    let config_path = config.unwrap_or_else(|| root.join("lint.toml"));
    let cfg = Config::parse(&std::fs::read_to_string(&config_path)?)?;

    let started = std::time::Instant::now();
    let outcome = lint_tree(&root, &cfg)?;
    let elapsed = started.elapsed();
    for d in &outcome.diagnostics {
        println!("{d}");
    }

    let json_path = json.unwrap_or_else(|| root.join("target").join("ebs-lint.json"));
    if let Some(dir) = json_path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(
        &json_path,
        report::to_json(&outcome.diagnostics, outcome.files_scanned),
    )?;

    println!(
        "ebs-lint: {} violation{} across {} file{} scanned in {:.2?} (report: {})",
        outcome.diagnostics.len(),
        if outcome.diagnostics.len() == 1 {
            ""
        } else {
            "s"
        },
        outcome.files_scanned,
        if outcome.files_scanned == 1 { "" } else { "s" },
        elapsed,
        json_path.display(),
    );

    if check && !outcome.diagnostics.is_empty() {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}
