//! Machine-readable output: a small hand-rolled JSON serializer (the
//! workspace is offline; no serde) emitting a stable, sorted report that
//! CI and `scripts/` tooling can diff across runs.
//!
//! The shape is versioned: `schema` names the document type and
//! `schema_version` is bumped on any field addition, removal or meaning
//! change, so downstream tooling can fail fast instead of mis-parsing.
//! Nothing run-dependent (timings, absolute paths) goes in the report —
//! the golden-output test diffs it byte-for-byte.

use crate::rules::Diagnostic;

/// Bumped whenever the report shape changes. v1 was the unversioned PR-3
/// shape; v2 added `schema`/`schema_version` and the call-graph tiers'
/// rule names in `by_rule`.
pub const SCHEMA_VERSION: u32 = 2;

/// Render the full report: summary counts plus every diagnostic.
pub fn to_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut by_rule: Vec<(&str, usize)> = Vec::new();
    for d in diags {
        match by_rule.iter_mut().find(|(r, _)| *r == d.rule.name()) {
            Some((_, c)) => *c += 1,
            None => by_rule.push((d.rule.name(), 1)),
        }
    }
    by_rule.sort();

    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ebs-lint-report\",\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"violations\": {},\n", diags.len()));
    out.push_str("  \"by_rule\": {");
    for (i, (rule, count)) in by_rule.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(" \"{rule}\": {count}"));
    }
    out.push_str(" },\n");
    out.push_str("  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {} }}{}\n",
            json_str(&d.path),
            d.line,
            json_str(d.rule.name()),
            json_str(&d.msg),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// JSON string escaping per RFC 8259 (the two-char escapes plus \uXXXX for
/// other control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    #[test]
    fn report_shape_and_escaping() {
        let diags = vec![Diagnostic {
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            rule: Rule::PanicDiscipline,
            msg: "`panic!` with \"quotes\"".into(),
        }];
        let j = to_json(&diags, 10);
        assert!(j.contains("\"schema\": \"ebs-lint-report\""));
        assert!(j.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
        assert!(j.contains("\"files_scanned\": 10"));
        assert!(j.contains("\"violations\": 1"));
        assert!(j.contains("\"panic_discipline\": 1"));
        assert!(j.contains("\\\"quotes\\\""));
    }

    #[test]
    fn empty_report() {
        let j = to_json(&[], 5);
        assert!(j.contains("\"violations\": 0"));
        assert!(j.contains("\"by_rule\": { }"));
    }
}
