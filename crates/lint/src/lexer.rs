//! A minimal Rust lexer: just enough to separate *code* from *non-code*.
//!
//! The lint rules are substring matchers over source text, so the one thing
//! the lexer must get right is never confusing the two channels:
//!
//! * **code** — everything the compiler sees, with the *contents* of string,
//!   raw-string, byte-string and char literals blanked out (the delimiting
//!   quotes survive so token boundaries stay intact). A forbidden API name
//!   inside `"a string"` therefore can never fire a rule.
//! * **comments** — the text of `//`, `///`, `//!` and `/* … */` comments,
//!   attributed to every line they touch. Rules read these for `// SAFETY:`
//!   annotations and `// lint: allow(...)` waivers; they never match
//!   forbidden APIs against them, so doc comments can't fire rules either.
//!
//! The tricky cases a naive scanner gets wrong and this one handles:
//! nested block comments, raw strings with arbitrarily many `#`s
//! (`r##"…"##`), escaped quotes in strings, byte-string and byte-char
//! literals (`b"…"`, `b'"'` — the quote inside a byte char must not open
//! string state), and the `'a` lifetime vs `'a'` char-literal ambiguity.

/// One source line, split into its code and comment channels.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Compiler-visible text with literal contents blanked out.
    pub code: String,
    /// Concatenated text of comments touching this line (without the
    /// `//` / `/*` markers, trimmed). Empty when the line has no comment.
    pub comment: String,
}

impl Line {
    /// True when the line carries no compiler-visible tokens.
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }
}

/// Lex `src` into per-line code/comment channels.
pub fn lex(src: &str) -> Vec<Line> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<Line> = vec![Line::default()];
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Line comment (also covers /// and //! doc comments).
        if c == '/' && next == Some('/') {
            i += 2;
            while i < chars.len() && chars[i] != '\n' {
                push(&mut lines, chars[i], true);
                i += 1;
            }
            continue;
        }

        // Block comment, possibly nested, possibly spanning lines.
        if c == '/' && next == Some('*') {
            i += 2;
            let mut depth = 1usize;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    push(&mut lines, chars[i], true);
                    i += 1;
                }
            }
            continue;
        }

        // Raw (and raw-byte / raw-C) strings: r"…", r#"…"#, br##"…"##.
        // Only when the prefix is not glued to a preceding identifier.
        if (c == 'r' || c == 'b' || c == 'c') && !prev_is_ident(&chars, i) {
            if let Some(consumed) = try_raw_string(&chars, i) {
                // Emit the prefix and quotes so token boundaries survive.
                push(&mut lines, '"', false);
                for &ch in &chars[i..i + consumed] {
                    if ch == '\n' {
                        push(&mut lines, '\n', false);
                    }
                }
                push(&mut lines, '"', false);
                i += consumed;
                continue;
            }
        }

        // Byte-string and byte-char literals: b"…" and b'…'. These must be
        // recognized *as* literals — a naive scanner that lets the `b`
        // through and then treats `'` with an identifier on its left as a
        // lifetime desyncs on `b'"'` (the quote opens string state and
        // swallows real code until the next `"` in the file). The harmless
        // `b` prefix stays in the code channel; contents are blanked.
        if c == 'b' && !prev_is_ident(&chars, i) {
            match next {
                Some('"') => {
                    push(&mut lines, 'b', false);
                    i = consume_string(&chars, i + 1, &mut lines);
                    continue;
                }
                Some('\'') => {
                    push(&mut lines, 'b', false);
                    push(&mut lines, '\'', false);
                    i += 2;
                    while i < chars.len() {
                        match chars[i] {
                            '\\' => i += 2,
                            '\'' => {
                                push(&mut lines, '\'', false);
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    continue;
                }
                _ => {}
            }
        }

        // Ordinary string literal.
        if c == '"' {
            i = consume_string(&chars, i, &mut lines);
            continue;
        }

        // Char literal vs lifetime. `'\…'` and `'x'` are literals; `'ident`
        // (no closing quote right after one char) is a lifetime and stays
        // in the code channel.
        if c == '\''
            && !prev_is_ident(&chars, i)
            && (next == Some('\\') || (chars.get(i + 2) == Some(&'\'') && next != Some('\'')))
        {
            push(&mut lines, '\'', false);
            i += 1;
            while i < chars.len() {
                match chars[i] {
                    '\\' => i += 2,
                    '\'' => {
                        push(&mut lines, '\'', false);
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            continue;
        }

        push(&mut lines, c, false);
        i += 1;
    }
    lines
}

/// Appends to the current line's channels, starting fresh lines on '\n'.
fn push(lines: &mut Vec<Line>, c: char, comment: bool) {
    if c == '\n' {
        lines.push(Line::default());
    } else if comment {
        lines.last_mut().expect("non-empty").comment.push(c);
    } else {
        lines.last_mut().expect("non-empty").code.push(c);
    }
}

/// Consume a `"…"` literal whose opening quote sits at `chars[i]`: emit the
/// delimiting quotes (blanking the contents, tracking escapes and embedded
/// newlines) and return the index just past the closing quote.
fn consume_string(chars: &[char], i: usize, lines: &mut Vec<Line>) -> usize {
    push(lines, '"', false);
    let mut i = i + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => {
                push(lines, '"', false);
                i += 1;
                break;
            }
            '\n' => {
                push(lines, '\n', false);
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// True when `chars[i - 1]` continues an identifier — used to keep the
/// `r`/`b` raw-string prefixes and `'` lifetimes from firing mid-word
/// (e.g. the `r` of `attr"x"` is not a raw-string prefix, and the quote in
/// `isn't` inside code can't occur, but `foo'` in macros can).
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If `chars[i..]` starts a raw string (`r`, `br`, `cr` + `#…#"`), return
/// the total char length of the literal including prefix and delimiters.
fn try_raw_string(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    // Optional b/c before r.
    if chars[j] == 'b' || chars[j] == 'c' {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    // Scan for `"` followed by `hashes` hashes.
    while j < chars.len() {
        if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k - i);
            }
        }
        j += 1;
    }
    Some(chars.len() - i) // unterminated: consume the rest
}

/// Per-line classification of `#[cfg(test)]`-gated regions.
///
/// Tracks brace depth through the code channel; when a `#[cfg(test)]`
/// attribute is followed by an item that opens a brace (the ubiquitous
/// `#[cfg(test)] mod tests { … }` pattern), every line until the matching
/// close brace is marked as test code. A `#[cfg(test)]` attached to a
/// braceless item (e.g. a `use`) is cleared at the terminating `;`.
pub fn test_regions(lines: &[Line]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // Depths at which a cfg(test) region closes (stack for nested mods).
    let mut region_close: Vec<i64> = Vec::new();
    let mut pending_attr = false;

    for (n, line) in lines.iter().enumerate() {
        let active = !region_close.is_empty();
        in_test[n] = active;
        let code = squash(&line.code);
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            pending_attr = true;
        }
        for ch in line.code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending_attr {
                        region_close.push(depth);
                        pending_attr = false;
                        in_test[n] = true;
                    }
                }
                '}' => {
                    if region_close.last() == Some(&depth) {
                        region_close.pop();
                    }
                    depth -= 1;
                }
                ';' if pending_attr && region_close.is_empty() => pending_attr = false,
                _ => {}
            }
        }
    }
    in_test
}

/// Remove all whitespace — lets attribute detection survive any formatting
/// (`#[cfg(test)]` vs `# [ cfg ( test ) ]`).
fn squash(code: &str) -> String {
    code.chars().filter(|c| !c.is_whitespace()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_are_blanked() {
        let c = code_of("let x = \"Instant::now()\";");
        assert_eq!(c[0], "let x = \"\";");
    }

    #[test]
    fn raw_strings_are_blanked() {
        let c = code_of("let x = r#\"std::net \" still inside\"#; y()");
        assert_eq!(c[0], "let x = \"\"; y()");
    }

    #[test]
    fn byte_and_nested_raw_strings() {
        let c = code_of("f(br##\"panic!(\"#\")\"##); g(b\"unwrap()\")");
        // The harmless `b` prefix stays in the code channel; the literal
        // contents are gone either way.
        assert_eq!(c[0], "f(\"\"); g(b\"\")");
    }

    #[test]
    fn byte_char_literals_do_not_desync() {
        // The quote inside b'"' must not open string state: the call that
        // follows stays in the code channel.
        let c = code_of("let q = b'\"'; Instant::now();");
        assert_eq!(c[0], "let q = b''; Instant::now();");
        // Escaped quote inside a byte char.
        let c = code_of(r"let q = b'\''; f();");
        assert_eq!(c[0], "let q = b''; f();");
        // Plain byte char: contents blanked like any other literal.
        let c = code_of("let n = b'n'; g();");
        assert_eq!(c[0], "let n = b''; g();");
    }

    #[test]
    fn byte_string_prefix_glued_to_ident_is_not_a_literal() {
        // `grab"x"` — the b belongs to the identifier; the quote still
        // starts an ordinary string.
        let c = code_of("grab\"x\"; h();");
        assert_eq!(c[0], "grab\"\"; h();");
    }

    #[test]
    fn raw_byte_strings_span_lines() {
        let lines = lex("f(br#\"panic!\nunwrap()\"#); g();");
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].code, "f(\"");
        assert_eq!(lines[1].code, "\"); g();");
    }

    #[test]
    fn line_and_doc_comments_split_off() {
        let lines = lex("foo(); // call Instant::now() later\n/// docs say panic!\nbar();");
        assert_eq!(lines[0].code, "foo(); ");
        assert!(lines[0].comment.contains("Instant::now"));
        assert_eq!(lines[1].code, "");
        assert!(lines[1].comment.contains("docs say panic!"));
        assert_eq!(lines[2].code, "bar();");
    }

    #[test]
    fn nested_block_comments() {
        let c = code_of("a(); /* one /* two */ still comment */ b();");
        assert_eq!(c[0], "a();  b();");
    }

    #[test]
    fn block_comment_spans_lines() {
        let c = code_of("a(); /* panic!\n unwrap() \n*/ b();");
        assert_eq!(
            c,
            vec!["a(); ".to_string(), String::new(), " b();".to_string()]
        );
    }

    #[test]
    fn lifetimes_survive_char_literals_blank() {
        let c = code_of("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert_eq!(c[0], "fn f<'a>(x: &'a str) { let c = ''; let nl = ''; }");
    }

    #[test]
    fn escaped_quote_in_string() {
        let c = code_of(r#"let s = "a\"b; unwrap()"; t();"#);
        assert_eq!(c[0], "let s = \"\"; t();");
    }

    #[test]
    fn multiline_string_keeps_line_count() {
        let lines = lex("let s = \"one\ntwo\"; done();");
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1].code, "\"; done();");
    }

    #[test]
    fn cfg_test_region_tracking() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lines = lex(src);
        let t = test_regions(&lines);
        assert_eq!(t, vec![false, false, true, true, true, false, false]);
    }

    #[test]
    fn cfg_test_on_use_does_not_open_region() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() { y(); }\n";
        let t = test_regions(&lex(src));
        assert!(!t[2]);
    }
}
