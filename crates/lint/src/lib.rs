//! # ebs-lint — the workspace's verifier-shaped gate
//!
//! The reproduction rests on two invariants the compiler does not check:
//! protocol engines are **sans-io** (the host injects time, io and
//! randomness) and the simulator is **deterministic** (byte-identical
//! `BENCH_RESULTS.json` across runs). The zero-copy work also opened the
//! first real `unsafe` surface. This crate walks the tree and mechanically
//! enforces the per-tier rules declared in the checked-in `lint.toml`:
//!
//! 1. **sans-io purity** — protocol crates may not reference wall clocks,
//!    sockets, spawned threads or ambient RNG;
//! 2. **determinism** — the simulator may not use wall-clock time or
//!    randomly-seeded hash collections;
//! 3. **unsafe hygiene** — `#![forbid(unsafe_code)]` everywhere except an
//!    explicit file allowlist, where each `unsafe` needs a `// SAFETY:`
//!    comment; growing the allowlist means touching `lint.toml` in review;
//! 4. **panic discipline** — `unwrap`/`expect`/`panic!` are denied on the
//!    data path unless waived inline with a reason.
//!
//! The binary (`cargo run -p ebs-lint -- --check`) exits nonzero on any
//! violation and writes a machine-readable JSON report. The lexer
//! ([`lexer`]) is what keeps the rules honest: forbidden names inside
//! string literals, doc comments or block comments never fire.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use config::Config;
use rules::Diagnostic;

/// Result of linting a tree: diagnostics plus scan statistics.
#[derive(Debug, Default)]
pub struct Outcome {
    /// All violations, sorted by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// The directories walked, relative to the workspace root.
const WALK_ROOTS: &[&str] = &["crates", "src", "vendor", "tests", "examples"];

/// Lint the workspace at `root` using `cfg`.
pub fn lint_tree(root: &Path, cfg: &Config) -> std::io::Result<Outcome> {
    let mut files = Vec::new();
    for dir in WALK_ROOTS {
        collect_rs(&root.join(dir), &mut files)?;
    }
    files.sort();

    let mut out = Outcome::default();
    for abs in &files {
        let rel = rel_path(root, abs);
        if is_excluded(&rel, cfg) {
            continue;
        }
        let src = fs::read_to_string(abs)?;
        out.files_scanned += 1;
        out.diagnostics.extend(rules::lint_file(&rel, &src, cfg));
        // Crate-root check: lib.rs (or main.rs for pure binaries) of every
        // crate under crates/ and vendor/, plus the workspace root crate.
        if let Some(crate_name) = crate_root_of(&rel) {
            if let Some(d) = rules::check_crate_root(&rel, &src, &crate_name, cfg) {
                out.diagnostics.push(d);
            }
        }
    }
    out.diagnostics.sort();
    Ok(out)
}

/// If `rel` is a crate root file, return the crate's directory name
/// (`"."` for the workspace root crate).
fn crate_root_of(rel: &str) -> Option<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["src", "lib.rs"] => Some(".".to_string()),
        ["crates", name, "src", "lib.rs"] | ["vendor", name, "src", "lib.rs"] => {
            Some((*name).to_string())
        }
        // Every crate in this workspace carries a lib.rs (binaries are
        // thin shims over it), so lib.rs is the one root checked; the
        // unsafe-token scan still covers every other file regardless.
        _ => None,
    }
}

fn is_excluded(rel: &str, cfg: &Config) -> bool {
    rel.starts_with("target/") || cfg.exclude.iter().any(|e| rel.starts_with(e.as_str()))
}

fn rel_path(root: &Path, abs: &Path) -> String {
    abs.strip_prefix(root)
        .unwrap_or(abs)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locate the workspace root: the nearest ancestor of `start` containing
/// `lint.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        if dir.join("lint.toml").is_file() {
            return Some(dir.to_path_buf());
        }
        cur = dir.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_roots() {
        assert_eq!(crate_root_of("src/lib.rs").as_deref(), Some("."));
        assert_eq!(
            crate_root_of("crates/tcp/src/lib.rs").as_deref(),
            Some("tcp")
        );
        assert_eq!(
            crate_root_of("vendor/bytes/src/lib.rs").as_deref(),
            Some("bytes")
        );
        assert_eq!(crate_root_of("crates/tcp/src/engine.rs"), None);
        assert_eq!(crate_root_of("crates/tcp/tests/lib.rs"), None);
    }
}
