//! # ebs-lint — the workspace's verifier-shaped gate
//!
//! The reproduction rests on invariants the compiler does not check:
//! protocol engines are **sans-io** (the host injects time, io and
//! randomness), the simulator is **deterministic** (byte-identical
//! `BENCH_RESULTS.json` across runs), and the sharded executor's workers
//! are **isolated** (cross-shard state moves only through the mailbox
//! gateway). The zero-copy work also opened the first real `unsafe`
//! surface. This crate walks the tree and mechanically enforces the
//! per-tier rules declared in the checked-in `lint.toml`:
//!
//! 1. **sans-io purity** — protocol crates may not reference wall clocks,
//!    sockets, spawned threads or ambient RNG, *even transitively*: the
//!    call-graph pass ([`graph`]) propagates taint from a forbidden API
//!    through any number of host-crate helpers to the engine call site;
//! 2. **determinism** — the simulator may not reach wall-clock time or
//!    randomly-seeded hash collections, with the same transitive reach;
//! 3. **unsafe hygiene** — `#![forbid(unsafe_code)]` everywhere except an
//!    explicit file allowlist, where each `unsafe` needs a `// SAFETY:`
//!    comment; growing the allowlist means touching `lint.toml` in review;
//! 4. **panic discipline** — `unwrap`/`expect`/`panic!` are denied on the
//!    data path unless waived inline with a reason;
//! 5. **shard isolation** — sharded workers reach other shards only via
//!    the gateway module's mailbox API; `std::sync` primitives and direct
//!    `Testbed`/`EventQueue` access outside the audited surface are denied.
//!
//! Waivers are themselves checked: a `lint: allow(…)` comment that no
//! longer suppresses anything is reported as `stale_waiver`, so the
//! exception inventory can only shrink without review.
//!
//! The binary (`cargo run -p ebs-lint -- --check`) exits nonzero on any
//! violation and writes a machine-readable JSON report. The lexer
//! ([`lexer`]) is what keeps the rules honest: forbidden names inside
//! string literals, doc comments or block comments never fire.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use config::Config;
use graph::FileData;
use rules::{Diagnostic, Rule};

/// Result of linting a tree: diagnostics plus scan statistics.
#[derive(Debug, Default)]
pub struct Outcome {
    /// All violations, sorted by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// The directories walked, relative to the workspace root.
const WALK_ROOTS: &[&str] = &["crates", "src", "vendor", "tests", "examples"];

/// Lint the workspace at `root` using `cfg`.
pub fn lint_tree(root: &Path, cfg: &Config) -> std::io::Result<Outcome> {
    let mut files = Vec::new();
    for dir in WALK_ROOTS {
        collect_rs(&root.join(dir), &mut files)?;
    }
    files.sort();

    let mut out = Outcome::default();
    // Pass 1: lex + parse every file once; run the token tiers.
    let mut fds: Vec<FileData> = Vec::new();
    let mut used: BTreeSet<(usize, usize, &'static str)> = BTreeSet::new();
    for abs in &files {
        let rel = rel_path(root, abs);
        if is_excluded(&rel, cfg) {
            continue;
        }
        let src = fs::read_to_string(abs)?;
        let lines = lexer::lex(&src);
        let in_test = lexer::test_regions(&lines);
        let idx = fds.len();

        let fl = rules::lint_file_lexed(&rel, &lines, &in_test, cfg);
        out.diagnostics.extend(fl.diags);
        used.extend(fl.used_waivers.into_iter().map(|(ln, r)| (idx, ln, r)));

        // Crate-root check: lib.rs (or main.rs for pure binaries) of every
        // crate under crates/ and vendor/, plus the workspace root crate.
        if let Some(crate_name) = crate_root_of(&rel) {
            if let Some(d) = rules::check_crate_root(&rel, &src, &crate_name, cfg) {
                out.diagnostics.push(d);
            }
        }

        let test_by_path = rules::classify(&rel).test_by_path;
        let items = parser::parse(&lines, &in_test, test_by_path);
        fds.push(FileData {
            rel,
            lines,
            in_test,
            items,
        });
    }
    out.files_scanned = fds.len();

    // Pass 2: the interprocedural tiers over the whole parsed workspace.
    let aliases = extern_aliases(root)?;
    let analysis = graph::analyze(&fds, &aliases, cfg);
    out.diagnostics.extend(analysis.diags);
    used.extend(analysis.used_waivers);

    // Pass 3: stale-waiver audit — every `lint: allow` comment must have
    // suppressed (or at least matched) something above.
    out.diagnostics.extend(stale_waivers(&fds, &used));

    out.diagnostics.sort();
    out.diagnostics.dedup();
    Ok(out)
}

/// Crate aliases visible in `use` paths: package names (with `-` → `_`)
/// and directory names, mapped to the crate's directory key. Built from a
/// minimal scan of each crate's `Cargo.toml` — only `[package] name` is
/// read, so this stays zero-dep.
fn extern_aliases(root: &Path) -> std::io::Result<BTreeMap<String, String>> {
    let mut map = BTreeMap::new();
    let mut add = |dir_key: &str, manifest: &Path| {
        if dir_key != "." {
            map.insert(dir_key.replace('-', "_"), dir_key.to_string());
        }
        if let Ok(src) = fs::read_to_string(manifest) {
            if let Some(name) = package_name(&src) {
                map.insert(name.replace('-', "_"), dir_key.to_string());
            }
        }
    };
    for parent in ["crates", "vendor"] {
        let dir = root.join(parent);
        if !dir.is_dir() {
            continue;
        }
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            if entry.path().is_dir() {
                let key = entry.file_name().to_string_lossy().to_string();
                add(&key, &entry.path().join("Cargo.toml"));
            }
        }
    }
    add(".", &root.join("Cargo.toml"));
    Ok(map)
}

/// Extract `name = "…"` from a manifest's `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(sec) = line.strip_prefix('[') {
            in_package = sec.trim_end_matches(']').trim() == "package";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Report `lint: allow(<rule>)` comments that never matched an occurrence.
/// Paren contents that are not a plain identifier (`<rule>` placeholders in
/// prose) are ignored; identifiers that name no rule are reported too.
fn stale_waivers(
    fds: &[FileData],
    used: &BTreeSet<(usize, usize, &'static str)>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (fi, fd) in fds.iter().enumerate() {
        for (ln, line) in fd.lines.iter().enumerate() {
            let mut rest = line.comment.as_str();
            while let Some(pos) = rest.find("lint: allow(") {
                rest = &rest[pos + "lint: allow(".len()..];
                let Some(close) = rest.find(')') else { break };
                let name = &rest[..close];
                rest = &rest[close + 1..];
                if name.is_empty()
                    || !name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
                {
                    continue; // prose like `lint: allow(<rule>)`
                }
                match Rule::WAIVABLE.iter().find(|r| r.name() == name) {
                    None => diags.push(Diagnostic {
                        path: fd.rel.clone(),
                        line: ln + 1,
                        rule: Rule::StaleWaiver,
                        msg: format!("waiver names unknown rule `{name}` — it suppresses nothing"),
                    }),
                    Some(r) => {
                        if !used.contains(&(fi, ln, r.name())) {
                            diags.push(Diagnostic {
                                path: fd.rel.clone(),
                                line: ln + 1,
                                rule: Rule::StaleWaiver,
                                msg: format!(
                                    "stale `lint: allow({name})` — no occurrence on this or the next line needs it; delete the waiver"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    diags
}

/// If `rel` is a crate root file, return the crate's directory name
/// (`"."` for the workspace root crate).
fn crate_root_of(rel: &str) -> Option<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["src", "lib.rs"] => Some(".".to_string()),
        ["crates", name, "src", "lib.rs"] | ["vendor", name, "src", "lib.rs"] => {
            Some((*name).to_string())
        }
        // Every crate in this workspace carries a lib.rs (binaries are
        // thin shims over it), so lib.rs is the one root checked; the
        // unsafe-token scan still covers every other file regardless.
        _ => None,
    }
}

fn is_excluded(rel: &str, cfg: &Config) -> bool {
    rel.starts_with("target/") || cfg.exclude.iter().any(|e| rel.starts_with(e.as_str()))
}

fn rel_path(root: &Path, abs: &Path) -> String {
    abs.strip_prefix(root)
        .unwrap_or(abs)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locate the workspace root: the nearest ancestor of `start` containing
/// `lint.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        if dir.join("lint.toml").is_file() {
            return Some(dir.to_path_buf());
        }
        cur = dir.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_roots() {
        assert_eq!(crate_root_of("src/lib.rs").as_deref(), Some("."));
        assert_eq!(
            crate_root_of("crates/tcp/src/lib.rs").as_deref(),
            Some("tcp")
        );
        assert_eq!(
            crate_root_of("vendor/bytes/src/lib.rs").as_deref(),
            Some("bytes")
        );
        assert_eq!(crate_root_of("crates/tcp/src/engine.rs"), None);
        assert_eq!(crate_root_of("crates/tcp/tests/lib.rs"), None);
    }

    #[test]
    fn package_names() {
        assert_eq!(
            package_name("[package]\nname = \"ebs-sim\"\nversion = \"0.1.0\"\n").as_deref(),
            Some("ebs-sim")
        );
        assert_eq!(
            package_name("[workspace]\nmembers = [\"crates/sim\"]\n"),
            None
        );
    }
}
