//! Golden-output test for the versioned JSON report: linting the fixture
//! workspace must serialize byte-for-byte to the checked-in golden file.
//! Any schema change (field order, escaping, new counters) shows up as a
//! readable diff here and forces a `schema_version` bump in review.
//!
//! Regenerate after an intentional change with:
//! `EBS_LINT_BLESS=1 cargo test -p ebs-lint --test report_golden`

use std::fs;
use std::path::Path;

use ebs_lint::config::Config;
use ebs_lint::{lint_tree, report};

#[test]
fn fixture_report_matches_golden() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest.join("tests/fixtures/callgraph_ws");
    let cfg = Config::parse(&fs::read_to_string(root.join("lint.toml")).expect("read lint.toml"))
        .expect("lint.toml parses");
    let outcome = lint_tree(&root, &cfg).expect("walk fixture workspace");
    let json = report::to_json(&outcome.diagnostics, outcome.files_scanned);

    let golden_path = manifest.join("tests/fixtures/callgraph_ws_report.golden.json");
    if std::env::var_os("EBS_LINT_BLESS").is_some() {
        fs::write(&golden_path, &json).expect("write golden");
        return;
    }
    let golden = fs::read_to_string(&golden_path)
        .expect("read golden (run with EBS_LINT_BLESS=1 to create)");
    assert!(
        json == golden,
        "report drifted from golden — if intentional, bump report::SCHEMA_VERSION and re-bless\n--- golden\n{golden}\n--- got\n{json}"
    );
}
