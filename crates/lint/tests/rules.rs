//! Fixture-driven acceptance tests: each rule's hit *and* miss cases,
//! including the tricky lexing (forbidden names inside strings, raw
//! strings, doc comments and block comments must never fire).
//!
//! Fixtures live under `tests/fixtures/` and are linted under pretend
//! repo-relative paths, so one file can be exercised as different tiers.
//! Expected line numbers are computed by searching the fixture source for
//! the offending code, keeping the assertions robust to fixture edits.

use ebs_lint::config::Config;
use ebs_lint::report::to_json;
use ebs_lint::rules::{check_crate_root, lint_file, Diagnostic, Rule};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// The checked-in policy: tests run against the real `lint.toml`, so the
/// shipped config is what gets validated.
fn real_config() -> Config {
    let path = format!("{}/../../lint.toml", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    Config::parse(&src).expect("checked-in lint.toml parses")
}

/// 1-based line of the first occurrence of `marker` in `src`.
fn line_of(src: &str, marker: &str) -> usize {
    src.lines()
        .position(|l| l.contains(marker))
        .unwrap_or_else(|| panic!("marker {marker:?} not found in fixture"))
        + 1
}

fn lines_with_rule(diags: &[Diagnostic], rule: Rule) -> Vec<usize> {
    let mut lines: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect();
    lines.sort_unstable();
    lines
}

#[test]
fn sans_io_hits_every_marked_line() {
    let src = fixture("sans_io_violation.rs");
    let diags = lint_file("crates/solar/src/fixture.rs", &src, &real_config());
    let mut expected = vec![
        line_of(&src, "Instant::now()"),
        line_of(&src, "std::net::TcpStream"),
        line_of(&src, "rand::thread_rng()"),
    ];
    expected.sort_unstable();
    assert_eq!(
        lines_with_rule(&diags, Rule::SansIo),
        expected,
        "{diags:#?}"
    );
    assert_eq!(
        diags.len(),
        expected.len(),
        "only sans_io should fire: {diags:#?}"
    );
}

#[test]
fn sans_io_ignores_strings_and_comments() {
    let src = fixture("sans_io_clean.rs");
    let diags = lint_file("crates/solar/src/fixture.rs", &src, &real_config());
    assert!(diags.is_empty(), "tricky lexing must not fire: {diags:#?}");
}

#[test]
fn sans_io_does_not_bind_host_crates() {
    let src = fixture("sans_io_violation.rs");
    // `stack` and `bench` host the engines; they may touch io/time.
    let diags = lint_file("crates/stack/src/fixture.rs", &src, &real_config());
    assert!(
        lines_with_rule(&diags, Rule::SansIo).is_empty(),
        "{diags:#?}"
    );
}

#[test]
fn determinism_flags_wall_clock_and_default_hashers() {
    let src = fixture("determinism_violation.rs");
    let diags = lint_file("crates/sim/src/fixture.rs", &src, &real_config());
    let mut expected = vec![
        line_of(&src, "use std::collections::HashMap"),
        line_of(&src, "use std::time::SystemTime"),
        line_of(&src, "flows: HashMap<u64, u64>"),
        line_of(&src, "SystemTime::now()"),
    ];
    expected.sort_unstable();
    assert_eq!(
        lines_with_rule(&diags, Rule::Determinism),
        expected,
        "{diags:#?}"
    );
    // The HashSet inside #[cfg(test)] must not fire.
    assert_eq!(diags.len(), expected.len(), "{diags:#?}");
}

#[test]
fn unsafe_fires_everywhere_outside_allowlist() {
    let src = fixture("unsafe_violations.rs");
    let diags = lint_file("crates/tcp/src/fixture.rs", &src, &real_config());
    let hits = lines_with_rule(&diags, Rule::UnsafeHygiene);
    assert_eq!(hits.len(), 3, "all three unsafe tokens fire: {diags:#?}");
    assert!(hits.contains(&line_of(&src, "unsafe fn covered_through_attribute")));
}

#[test]
fn unsafe_in_allowlisted_file_needs_safety_comments() {
    let src = fixture("unsafe_violations.rs");
    // `crates/crc/src/lib.rs` is on the real allowlist.
    let diags = lint_file("crates/crc/src/lib.rs", &src, &real_config());
    let expected = vec![line_of(
        &src,
        "unsafe { *p } // fires even when allowlisted",
    )];
    assert_eq!(
        lines_with_rule(&diags, Rule::UnsafeHygiene),
        expected,
        "{diags:#?}"
    );
    assert!(diags[0].msg.contains("SAFETY"), "{diags:#?}");
}

#[test]
fn obs_crate_is_bound_to_sans_io_and_determinism() {
    // The observability layer lives inside the deterministic core: a
    // wall-clock call in crates/obs must fail `ebs-lint --check` under
    // BOTH tiers (sans-io purity and replay determinism).
    let src = fixture("obs_wall_clock.rs");
    let diags = lint_file("crates/obs/src/fixture.rs", &src, &real_config());
    let expected = vec![line_of(&src, "Instant::now()")];
    assert_eq!(
        lines_with_rule(&diags, Rule::SansIo),
        expected,
        "{diags:#?}"
    );
    assert_eq!(
        lines_with_rule(&diags, Rule::Determinism),
        expected,
        "{diags:#?}"
    );
}

#[test]
fn blk_crate_is_bound_to_all_three_tiers() {
    // The virtio-shaped frontend's rings and pushdown execution are pure
    // data structures; PR 10 put crates/blk under sans-io, determinism
    // AND panic discipline. A wall-clock call must fire the first two...
    let src = fixture("obs_wall_clock.rs");
    let diags = lint_file("crates/blk/src/fixture.rs", &src, &real_config());
    let expected = vec![line_of(&src, "Instant::now()")];
    assert_eq!(
        lines_with_rule(&diags, Rule::SansIo),
        expected,
        "{diags:#?}"
    );
    assert_eq!(
        lines_with_rule(&diags, Rule::Determinism),
        expected,
        "{diags:#?}"
    );
    // ...and a bare unwrap on the ring path must fire the third.
    let src = fixture("panic_violations.rs");
    let diags = lint_file("crates/blk/src/fixture.rs", &src, &real_config());
    assert!(
        lines_with_rule(&diags, Rule::PanicDiscipline)
            .contains(&line_of(&src, "x.unwrap() // fires")),
        "{diags:#?}"
    );
}

#[test]
fn cc_crate_is_bound_to_all_three_tiers() {
    // The congestion controllers are pure window state machines; PR 9
    // put crates/cc under sans-io, determinism AND panic discipline.
    // A wall-clock call must fire the first two...
    let src = fixture("obs_wall_clock.rs");
    let diags = lint_file("crates/cc/src/fixture.rs", &src, &real_config());
    let expected = vec![line_of(&src, "Instant::now()")];
    assert_eq!(
        lines_with_rule(&diags, Rule::SansIo),
        expected,
        "{diags:#?}"
    );
    assert_eq!(
        lines_with_rule(&diags, Rule::Determinism),
        expected,
        "{diags:#?}"
    );
    // ...and a bare unwrap on the update path must fire the third.
    let src = fixture("panic_violations.rs");
    let diags = lint_file("crates/cc/src/fixture.rs", &src, &real_config());
    assert!(
        lines_with_rule(&diags, Rule::PanicDiscipline)
            .contains(&line_of(&src, "x.unwrap() // fires")),
        "{diags:#?}"
    );
}

#[test]
fn panic_discipline_hits_waivers_and_test_modules() {
    let src = fixture("panic_violations.rs");
    let diags = lint_file("crates/solar/src/fixture.rs", &src, &real_config());
    let mut expected = vec![
        line_of(&src, "x.unwrap() // fires"),
        line_of(&src, "x.expect(\"always here\")"),
        line_of(&src, "panic!(\"overload\")"),
        // The reason-less waiver still fires: it sits on the line after
        // the fn header (the waiver text itself is not unique in the file).
        line_of(&src, "fn waiver_without_reason") + 1,
    ];
    expected.sort_unstable();
    let got = lines_with_rule(&diags, Rule::PanicDiscipline);
    assert_eq!(got, expected, "{diags:#?}");
    assert!(
        diags.iter().any(|d| d.msg.contains("missing its reason")),
        "reason-less waiver gets the dedicated message: {diags:#?}"
    );
}

#[test]
fn crate_root_missing_forbid_is_flagged_at_line_one() {
    let src = fixture("root_missing_forbid.rs");
    let cfg = real_config();
    let d = check_crate_root("crates/tcp/src/lib.rs", &src, "tcp", &cfg)
        .expect("missing forbid must be flagged");
    assert_eq!(d.line, 1);
    assert_eq!(d.rule, Rule::UnsafeHygiene);

    // The real attribute satisfies the check; allowlisted crates may skip it.
    let ok = "#![forbid(unsafe_code)]\nfn x() {}\n";
    assert!(check_crate_root("crates/tcp/src/lib.rs", ok, "tcp", &cfg).is_none());
    assert!(check_crate_root(
        "crates/crc/src/lib.rs",
        "#![deny(unsafe_code)]\n",
        "crc",
        &cfg
    )
    .is_none());
}

#[test]
fn diagnostics_render_file_line_and_json() {
    let src = fixture("panic_violations.rs");
    let diags = lint_file("crates/solar/src/fixture.rs", &src, &real_config());
    let rendered = format!("{}", diags[0]);
    assert!(
        rendered.starts_with("crates/solar/src/fixture.rs:"),
        "diagnostics lead with file:line — got {rendered}"
    );
    let json = to_json(&diags, 1);
    assert!(json.contains("\"rule\": \"panic_discipline\""));
    assert!(json.contains("\"file\": \"crates/solar/src/fixture.rs\""));
    assert!(json.contains(&format!("\"violations\": {}", diags.len())));
}
