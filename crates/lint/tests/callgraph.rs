//! Interprocedural hit/miss coverage against the fixture workspace in
//! `tests/fixtures/callgraph_ws`: forbidden calls wrapped one and two
//! helpers deep, a cross-module hop, taint stopped by an allowlisted
//! boundary fn, a recursive cycle, a call-site waiver, the shard-isolation
//! gateway rules, and the stale-waiver audit — all through the same
//! `lint_tree` entry point the CLI uses.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use ebs_lint::config::Config;
use ebs_lint::{lint_tree, rules};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/callgraph_ws")
}

fn fixture_cfg(root: &Path) -> Config {
    Config::parse(&fs::read_to_string(root.join("lint.toml")).expect("read fixture lint.toml"))
        .expect("fixture lint.toml parses")
}

/// 1-based line of the unique `marker` in `rel` under the fixture root.
fn mark(root: &Path, rel: &str, marker: &str) -> usize {
    let src = fs::read_to_string(root.join(rel)).expect(rel);
    let hits: Vec<usize> = src
        .lines()
        .enumerate()
        .filter_map(|(i, l)| l.contains(marker).then_some(i + 1))
        .collect();
    assert_eq!(hits.len(), 1, "marker {marker:?} must be unique in {rel}");
    hits[0]
}

#[test]
fn interprocedural_hits_and_misses() {
    let root = fixture_root();
    let cfg = fixture_cfg(&root);
    let outcome = lint_tree(&root, &cfg).expect("walk fixture workspace");

    let engine = "crates/engine/src/lib.rs";
    let shard = "crates/shardhost/src/lib.rs";
    let gateway = "crates/shardhost/src/gateway.rs";
    let submod = "crates/host/src/submod.rs";

    let expected: BTreeSet<(String, usize, &str)> = [
        // Taint surfaces at the engine call site, however deep the wrap.
        (engine, mark(&root, engine, "MARK: one deep"), "sans_io"),
        (engine, mark(&root, engine, "MARK: two deep"), "sans_io"),
        (engine, mark(&root, engine, "MARK: cross module"), "sans_io"),
        (engine, mark(&root, engine, "MARK: cycle"), "sans_io"),
        (engine, mark(&root, engine, "MARK: hash map"), "determinism"),
        // Tier 5: mailbox call and std::sync outside the gateway; the
        // gateway itself reaching past its audited surface.
        (
            shard,
            mark(&root, shard, "MARK: rogue mailbox"),
            "shard_isolation",
        ),
        (
            shard,
            mark(&root, shard, "MARK: rogue sync"),
            "shard_isolation",
        ),
        (
            gateway,
            mark(&root, gateway, "MARK: gateway snoop"),
            "shard_isolation",
        ),
        // The audit flags the orphaned waiver comment in the host crate.
        (
            submod,
            mark(&root, submod, "obsolete justification"),
            "stale_waiver",
        ),
    ]
    .into_iter()
    .map(|(p, l, r)| (p.to_string(), l, r))
    .collect();

    let got: BTreeSet<(String, usize, &str)> = outcome
        .diagnostics
        .iter()
        .map(|d| (d.path.clone(), d.line, d.rule.name()))
        .collect();

    let missing: Vec<_> = expected.difference(&got).collect();
    let spurious: Vec<_> = got.difference(&expected).collect();
    assert!(
        missing.is_empty() && spurious.is_empty(),
        "fixture diagnostics diverge\n  missing: {missing:?}\n  spurious: {spurious:?}\n  all:\n{}",
        outcome
            .diagnostics
            .iter()
            .map(|d| format!("    {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn witness_chain_names_source_and_hops() {
    let root = fixture_root();
    let cfg = fixture_cfg(&root);
    let outcome = lint_tree(&root, &cfg).expect("walk fixture workspace");

    let two_deep = mark(&root, "crates/engine/src/lib.rs", "MARK: two deep");
    let d = outcome
        .diagnostics
        .iter()
        .find(|d| d.path == "crates/engine/src/lib.rs" && d.line == two_deep)
        .expect("two-deep wrap is flagged");
    assert!(
        d.msg.contains("wrap_two") && d.msg.contains("wrap_one") && d.msg.contains("Instant::now"),
        "chain must name both hops and the source: {}",
        d.msg
    );
    let src_line = mark(&root, "crates/host/src/lib.rs", "MARK: direct source");
    assert!(
        d.msg
            .contains(&format!("crates/host/src/lib.rs:{src_line}")),
        "chain must pin the source line: {}",
        d.msg
    );
}

/// The acceptance case for this tier: the per-file scanner sees nothing in
/// the engine crate (no forbidden token appears there), so only the
/// call-graph pass can catch the two-deep `Instant::now` wrap.
#[test]
fn per_file_scanner_provably_misses_the_wrap() {
    let root = fixture_root();
    let cfg = fixture_cfg(&root);
    let rel = "crates/engine/src/lib.rs";
    let src = fs::read_to_string(root.join(rel)).expect("read engine lib.rs");
    let diags = rules::lint_file(rel, &src, &cfg);
    assert!(
        diags.is_empty(),
        "per-file pass must be blind to wrapped calls, saw: {diags:?}"
    );
}

/// Flipping `[callgraph] enabled` off restores the old per-file behaviour:
/// every transitive finding disappears, tier-5 token findings remain.
#[test]
fn callgraph_can_be_disabled() {
    let root = fixture_root();
    let mut cfg = fixture_cfg(&root);
    cfg.callgraph_enabled = false;
    let outcome = lint_tree(&root, &cfg).expect("walk fixture workspace");
    assert!(
        outcome
            .diagnostics
            .iter()
            .all(|d| !matches!(d.rule, rules::Rule::SansIo | rules::Rule::Determinism)),
        "no transitive findings without the call-graph pass: {:?}",
        outcome.diagnostics
    );
    // With the pass off, the call-site waiver in the engine has nothing to
    // suppress — the audit must now call it stale.
    let waiver_line = mark(&root, "crates/engine/src/lib.rs", "reviewed host tap");
    assert!(
        outcome
            .diagnostics
            .iter()
            .any(|d| d.path == "crates/engine/src/lib.rs"
                && d.line == waiver_line
                && d.rule.name() == "stale_waiver"),
        "call-site waiver should go stale when the pass is off: {:?}",
        outcome.diagnostics
    );
    let sync_line = mark(&root, "crates/shardhost/src/lib.rs", "MARK: rogue sync");
    assert!(
        outcome
            .diagnostics
            .iter()
            .any(|d| d.path == "crates/shardhost/src/lib.rs" && d.line == sync_line),
        "token half of tier 5 still fires: {:?}",
        outcome.diagnostics
    );
}
