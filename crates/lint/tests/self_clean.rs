//! The gate gates itself: `cargo test -p ebs-lint` fails if the workspace
//! it lives in violates its own `lint.toml`. This is the same walk the
//! `--check` CLI performs, so CI redundancy is intentional — a contributor
//! running only the test suite still hits the lint.

use std::path::Path;

use ebs_lint::config::Config;
use ebs_lint::{find_root, lint_tree};

#[test]
fn workspace_passes_its_own_lint() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_root(here).expect("lint.toml above crates/lint");
    let cfg =
        Config::parse(&std::fs::read_to_string(root.join("lint.toml")).expect("read lint.toml"))
            .expect("lint.toml parses");
    let started = std::time::Instant::now();
    let outcome = lint_tree(&root, &cfg).expect("walk workspace");
    let took = started.elapsed();
    assert!(
        outcome.files_scanned > 50,
        "walk must cover the workspace, saw {}",
        outcome.files_scanned
    );
    // Perf budget: the full workspace — lex, parse, call graph, all five
    // tiers — must stay under 5 s. Asserted only in release; debug builds
    // are allowed to be slow.
    if !cfg!(debug_assertions) {
        assert!(
            took < std::time::Duration::from_secs(5),
            "full workspace lint took {took:.2?}, budget is 5s"
        );
    }
    assert!(
        outcome.diagnostics.is_empty(),
        "workspace violates its own lint:\n{}",
        outcome
            .diagnostics
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
