// Fixture: determinism-tier violations, linted under crates/sim/src/.
// `use` lines fire too — importing the type is already a tier breach.
use std::collections::HashMap;
use std::time::SystemTime;

struct Engine {
    flows: HashMap<u64, u64>, // fires: default-hasher map in engine state
}

fn stamp() -> u64 {
    SystemTime::now() // fires: wall clock
        .elapsed()
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn hash_collections_are_fine_in_tests() {
        let mut s: HashSet<u64> = HashSet::new();
        s.insert(1);
        assert!(s.contains(&1));
    }
}
