// Fixture: unsafe-hygiene cases. tests/rules.rs lints this twice — once
// under a non-allowlisted path (every `unsafe` fires) and once under an
// allowlisted path (only the SAFETY-comment-less one fires).

fn missing_safety_comment(p: *const u8) -> u8 {
    unsafe { *p } // fires even when allowlisted: no SAFETY comment
}

fn has_safety_comment(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads (fixture).
    unsafe { *p }
}

// SAFETY contract: caller must pass a pointer valid for reads; the
// attribute between this comment and the fn must not break coverage.
#[inline(never)]
unsafe fn covered_through_attribute(p: *const u8) -> u8 {
    *p
}

fn mentions_unsafe_harmlessly() {
    // The word unsafe in a comment, and "unsafe" in a string, never fire.
    let _ = "unsafe { totally_fine() }";
    let _ = unsafety_counter();
}

fn unsafety_counter() -> u32 {
    0 // `unsafety` must not match the `unsafe` token (ident boundary)
}
