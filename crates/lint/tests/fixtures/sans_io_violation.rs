// Fixture: every marked reference MUST fire the sans_io rule when linted
// under a protocol-crate path. tests/rules.rs locates the expected lines
// by searching for the code itself, so edits stay cheap.
use std::time::Instant;

fn engine_tick() -> u64 {
    let t = Instant::now(); // fires: wall clock in an engine
    t.elapsed().as_nanos() as u64
}

fn resolve() {
    let _ = std::net::TcpStream::connect("127.0.0.1:80"); // fires: sockets
}

fn entropy() -> u64 {
    rand::thread_rng().next_u64() // fires: ambient randomness
}
