//! Fixture: an observability module that reaches for ambient time.
//!
//! The obs crate's contract is that every event timestamp is *injected*
//! (SimTime from the host) — grabbing a wall clock here both breaks
//! sans-io and makes traces non-replayable, so both tiers must fire.

use std::time::Instant;

pub struct LeakyJournal {
    started: Instant,
}

impl LeakyJournal {
    pub fn new() -> Self {
        LeakyJournal {
            started: Instant::now(),
        }
    }

    pub fn elapsed_ns(&self) -> u128 {
        self.started.elapsed().as_nanos()
    }
}
