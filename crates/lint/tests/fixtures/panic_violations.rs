// Fixture: panic-discipline cases, linted under a data-path crate path.

fn bare_unwrap(x: Option<u8>) -> u8 {
    x.unwrap() // fires
}

fn bare_expect(x: Option<u8>) -> u8 {
    x.expect("always here") // fires
}

fn explicit_panic(x: u8) {
    if x > 250 {
        panic!("overload"); // fires
    }
}

fn waived_same_line(x: Option<u8>) -> u8 {
    x.unwrap() // lint: allow(panic_discipline) — x is Some by construction in this fixture
}

fn waived_line_above(x: Option<u8>) -> u8 {
    // lint: allow(panic_discipline) — fixture invariant: caller checked is_some()
    x.unwrap()
}

fn waiver_without_reason(x: Option<u8>) -> u8 {
    x.unwrap() // lint: allow(panic_discipline)
}

fn unwrap_or_is_fine(x: Option<u8>) -> u8 {
    // unwrap_or / unwrap_or_else / unwrap_or_default carry no panic.
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_allowed_in_test_modules() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
        if false {
            panic!("test-only panic is fine");
        }
    }
}
