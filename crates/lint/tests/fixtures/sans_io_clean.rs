//! Fixture: every forbidden name below hides where the lexer must NOT look.
//! Linting this file under a protocol-crate path must produce zero
//! diagnostics — this is the tricky-lexing regression test.

/// Doc comments may discuss Instant::now() and std::net freely.
/// Even thread_rng() and panic! are fine here.
fn doc_comment_mentions() {}

fn in_strings() {
    let a = "Instant::now() inside a plain string";
    let b = r#"std::net::TcpStream inside a raw string, "quoted" too"#;
    let c = r##"thread_rng() inside r##-delimited raw string: "#"##;
    let d = b"SystemTime::now() in a byte string";
    let e = concat!("panic!", "(\"not real\")");
    let _ = (a, b, c, d, e);
}

/* Block comments mentioning std::thread::spawn and SystemTime are fine,
   /* even nested ones with Instant::now() */ still a comment. */
fn block_comment_mentions() {}

fn lifetimes_not_char_literals<'a>(x: &'a str) -> &'a str {
    // The 'a lifetimes above must not confuse the char-literal scanner
    // into swallowing code as string contents.
    let _marker = 'x';
    x
}
