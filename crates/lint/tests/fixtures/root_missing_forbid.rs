//! Fixture: a crate root with no `#![forbid(unsafe_code)]` attribute.
//! The text below mentions the attribute only in a doc comment and a
//! string, which must not satisfy the check:
//! `#![forbid(unsafe_code)]` — not real.

fn not_the_attribute() {
    let _ = "#![forbid(unsafe_code)]";
}
