//! Shard-isolation fixture: a `Shard` state type, a gateway module, and
//! worker code that breaks the rules in both directions.
#![forbid(unsafe_code)]

pub mod gateway;

/// The shard state type named in `[shard_isolation] shard_state_types`.
pub struct Shard {
    q: Vec<u64>,
}

impl Shard {
    /// Mailbox API: deliver a message from another shard.
    pub fn inject_remote(&mut self, v: u64) {
        self.q.push(v);
    }

    /// Mailbox API: drain outgoing messages.
    pub fn take_outbox(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.q)
    }

    /// On the gateway's audited surface (`boundary_allowed_calls`).
    pub fn harvest(&mut self) -> usize {
        let n = self.q.len();
        self.q.clear();
        n
    }

    /// NOT on the audited surface.
    pub fn peek_state(&self) -> usize {
        self.q.len()
    }
}

/// Worker code calling the mailbox API outside the gateway — violation.
pub fn rogue_mailbox(s: &mut Shard) {
    s.inject_remote(1); // MARK: rogue mailbox
}

/// Worker code reaching for std::sync outside the gateway — violation.
pub fn rogue_sync() -> u64 {
    let m = std::sync::Mutex::new(7u64); // MARK: rogue sync
    let v = m.lock().map(|g| *g).unwrap_or(0);
    v
}
