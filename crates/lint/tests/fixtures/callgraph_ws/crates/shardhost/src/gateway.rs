//! The one sanctioned crossing point (listed in `[shard_isolation]
//! boundary`). Mailbox calls and `std::sync` are legal here; shard-state
//! methods are legal only through the audited surface.

use crate::Shard;

/// Uses the audited surface — clean.
pub fn collect(s: &mut Shard) -> usize {
    s.harvest() // MARK: gateway allowed
}

/// Reaches past the audited surface — violation.
pub fn snoop(s: &Shard) -> usize {
    s.peek_state() // MARK: gateway snoop
}

/// std::sync is permitted inside the boundary file.
pub fn fan_in(vals: &std::sync::Mutex<Vec<u64>>) -> u64 {
    // MARK: gateway sync ok
    vals.lock().map(|v| v.iter().sum()).unwrap_or(0)
}
