//! The tier-covered "engine": no forbidden token appears in this file, so
//! the PR-3 per-file scanner finds nothing here. Every violation below is
//! reachable only through the call graph.
#![forbid(unsafe_code)]

use host::{cyclic_a, via_boundary, wrap_one, wrap_two};

/// Tainted one helper deep.
pub fn tick_one() -> u64 {
    wrap_one() // MARK: one deep
}

/// Tainted two helpers deep.
pub fn tick_two() -> u64 {
    wrap_two() // MARK: two deep
}

/// Tainted through a cross-module hop.
pub fn tick_mod() -> u64 {
    host::submod::wrap_mod() // MARK: cross module
}

/// Clean: the only wall-clock on this path is the sanctioned boundary.
pub fn tick_ok() -> u64 {
    via_boundary() // MARK: boundary ok
}

/// Tainted through a recursive cycle (and propagation terminates).
pub fn tick_cycle() -> u64 {
    cyclic_a(3) // MARK: cycle
}

/// Tainted but explicitly waived at the call site.
pub fn tick_waived() -> u64 {
    // lint: allow(sans_io) — fixture: reviewed host tap
    wrap_one() // MARK: waived
}

/// Determinism taint: a default-hasher map two frames down.
pub fn tick_map() -> Option<u8> {
    host::pick_map(3) // MARK: hash map
}
