//! Host crate: wraps forbidden APIs at various call depths. Nothing here
//! is tier-covered, so the per-file scanner stays silent — only the
//! call-graph pass can attribute these helpers to an engine call site.
#![forbid(unsafe_code)]

pub mod clock;
pub mod submod;

/// Forbidden call one helper deep.
pub fn wrap_one() -> u64 {
    let t = std::time::Instant::now(); // MARK: direct source
    t.elapsed().as_nanos() as u64
}

/// Forbidden call two helpers deep — the case the per-file scanner
/// provably misses.
pub fn wrap_two() -> u64 {
    wrap_one()
}

/// Taint stopped by the sanctioned boundary fn.
pub fn via_boundary() -> u64 {
    clock::sanctioned_now()
}

/// Mutually recursive pair; the cycle eventually reaches a source, and
/// propagation must terminate anyway.
pub fn cyclic_a(n: u64) -> u64 {
    if n == 0 {
        wrap_one()
    } else {
        cyclic_b(n - 1)
    }
}

/// Other half of the cycle.
pub fn cyclic_b(n: u64) -> u64 {
    cyclic_a(n)
}

/// A default-hasher collection buried in a helper (determinism tier).
pub fn pick_map(k: u8) -> Option<u8> {
    use std::collections::HashMap;
    let mut m = HashMap::new(); // MARK: hash source
    m.insert(k, k);
    m.get(&k).copied()
}
