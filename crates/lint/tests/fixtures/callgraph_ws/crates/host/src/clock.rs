//! The sanctioned wall-clock tap: listed in `[callgraph] boundary`, so
//! taint neither starts in nor flows through it.
#![allow(dead_code)]

/// Reviewed boundary — stats only.
pub fn sanctioned_now() -> u64 {
    std::time::Instant::now().elapsed().as_nanos() as u64
}
