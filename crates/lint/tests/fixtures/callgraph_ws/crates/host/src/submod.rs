//! Cross-module hop: the source sits one module away from the helper the
//! engine calls.

/// Calls back into the crate root's tainted helper.
pub fn wrap_mod() -> u64 {
    crate::wrap_one()
}

// A waiver with nothing to waive: the stale-waiver audit must flag it.
// lint: allow(determinism) — obsolete justification left behind
pub fn clean() -> u64 {
    7
}
