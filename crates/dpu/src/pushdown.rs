//! The Pushdown stage: storage functions as a metered match-action stage.
//!
//! FlexBSO's argument is that a SmartNIC pipeline already touches every
//! block on its way to the SSD, so a byte-predicate scan or an XOR fold is
//! one more action, not a new engine. This module models that stage on the
//! *storage-side* DPU: the host asks it to execute a function over a block
//! run ([`PushdownStage::meter`]), the stage charges pipeline latency and
//! FPGA cycles per scanned block, and records how many PCIe/fabric bytes
//! the placement avoided moving (scanned minus emitted). The semantic
//! result itself comes from `ebs-blk`'s reference execution — hardware and
//! software placements must agree on the answer by construction; only the
//! cost model differs.
//!
//! As a [`Stage`] it also drops into a [`crate::Pipeline`] chain (one
//! block per packet, like the CRC stage), which is what `describe_p4`
//! renders for the expressibility story.

use ebs_sim::{SimDuration, SimTime};
use ebs_wire::{PushdownOp, BLOCK_SIZE};

use crate::pipeline::{PacketCtx, Stage, StageVerdict};

/// Per-op hardware costs of the pushdown stage.
#[derive(Debug, Clone, Copy)]
pub struct PushdownCosts {
    /// Pipeline latency per scanned block (the scan is a single-byte
    /// compare wired into the existing per-block pass: cheap).
    pub scan_ns_per_block: u64,
    /// Latency per block of an XOR fold (touches all 4 KiB).
    pub merge_ns_per_block: u64,
    /// FPGA cycles charged per scanned block (occupancy accounting).
    pub cycles_per_block: u64,
}

impl Default for PushdownCosts {
    fn default() -> Self {
        PushdownCosts {
            // A predicate compare rides the existing per-block pipeline
            // pass; an XOR fold streams the whole block through the ALU.
            scan_ns_per_block: 25,
            merge_ns_per_block: 90,
            cycles_per_block: 64,
        }
    }
}

/// The metered pushdown stage (see module docs).
#[derive(Debug)]
pub struct PushdownStage {
    costs: PushdownCosts,
    blocks_scanned: u64,
    blocks_emitted: u64,
    requests: u64,
    cycles: u64,
    bytes_saved: u64,
}

impl PushdownStage {
    /// A stage with the given cost model.
    pub fn new(costs: PushdownCosts) -> Self {
        PushdownStage {
            costs,
            blocks_scanned: 0,
            blocks_emitted: 0,
            requests: 0,
            cycles: 0,
            bytes_saved: 0,
        }
    }

    /// Account one pushdown executed on this DPU: `blocks_in` scanned,
    /// `blocks_out` emitted. Returns the stage's processing latency.
    pub fn meter(&mut self, op: PushdownOp, blocks_in: u32, blocks_out: u32) -> SimDuration {
        self.requests += 1;
        self.blocks_scanned += blocks_in as u64;
        self.blocks_emitted += blocks_out as u64;
        self.cycles += self.costs.cycles_per_block * blocks_in as u64;
        self.bytes_saved += blocks_in.saturating_sub(blocks_out) as u64 * BLOCK_SIZE as u64;
        let per_block = match op {
            PushdownOp::RangeScan | PushdownOp::ChecksumVerify => self.costs.scan_ns_per_block,
            PushdownOp::CompactionMerge => self.costs.merge_ns_per_block,
        };
        SimDuration::from_nanos(per_block * blocks_in as u64)
    }

    /// Pushdown requests metered.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Blocks scanned by the stage.
    pub fn blocks_scanned(&self) -> u64 {
        self.blocks_scanned
    }

    /// Blocks emitted toward the fabric.
    pub fn blocks_emitted(&self) -> u64 {
        self.blocks_emitted
    }

    /// FPGA cycles consumed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// PCIe/fabric bytes the placement avoided moving.
    pub fn bytes_saved(&self) -> u64 {
        self.bytes_saved
    }
}

impl Stage for PushdownStage {
    fn name(&self) -> &'static str {
        "Pushdown"
    }
    fn latency(&self) -> SimDuration {
        SimDuration::from_nanos(self.costs.scan_ns_per_block)
    }
    fn process(&mut self, _now: SimTime, ctx: &mut PacketCtx) -> StageVerdict {
        // In-pipeline mode: one packet is one block of a scan pass; the
        // packet's fate (emit or filter) is decided by the host's
        // reference execution, so here we only account the scan.
        self.blocks_scanned += 1;
        self.cycles += self.costs.cycles_per_block;
        let _ = ctx;
        StageVerdict::Forward
    }
    fn p4_summary(&self) -> String {
        "action pushdown { if (payload[pred.offset] & pred.mask != pred.value) drop(); hdr.ebs.payload_crc = crc32_raw(payload); }".into()
    }
}

impl ebs_obs::Sample for PushdownStage {
    /// Component `dpu.pushdown`: scan volume, occupancy and bytes saved.
    fn sample_into(&self, _now: SimTime, m: &mut ebs_obs::Metrics) {
        m.counter_add("dpu.pushdown", "requests", self.requests);
        m.counter_add("dpu.pushdown", "blocks_scanned", self.blocks_scanned);
        m.counter_add("dpu.pushdown", "blocks_emitted", self.blocks_emitted);
        m.counter_add("dpu.pushdown", "cycles", self.cycles);
        m.counter_add("dpu.pushdown", "bytes_saved", self.bytes_saved);
    }
}

/// FPGA resource estimate of the pushdown stage, reported **separately**
/// from [`crate::resources::estimate`]'s Table 3 set: the paper's DPU
/// ships without it, so the headline totals must not change. A byte
/// compare plus an XOR fold lane is a small LUT-only action (comparator,
/// mask register, 64-bit XOR accumulator replicated 8-wide), with one
/// BRAM block for in-flight fold state.
pub fn pushdown_estimate() -> crate::resources::ModuleUsage {
    crate::resources::ModuleUsage {
        name: "Pushdown",
        luts: 4_800,
        bram_blocks: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_charges_latency_and_savings() {
        let mut s = PushdownStage::new(PushdownCosts::default());
        let lat = s.meter(PushdownOp::RangeScan, 256, 32);
        assert_eq!(lat, SimDuration::from_nanos(25 * 256));
        assert_eq!(s.blocks_scanned(), 256);
        assert_eq!(s.blocks_emitted(), 32);
        assert_eq!(s.cycles(), 64 * 256);
        assert_eq!(s.bytes_saved(), (256 - 32) * 4096);
        // Merge is per-block more expensive than scan.
        let merge = s.meter(PushdownOp::CompactionMerge, 64, 16);
        assert!(merge > s.meter(PushdownOp::RangeScan, 64, 16));
    }

    #[test]
    fn stage_slots_into_a_pipeline() {
        use bytes::Bytes;
        use ebs_wire::{EbsHeader, EbsOp};
        let mut p =
            crate::Pipeline::new(vec![Box::new(PushdownStage::new(PushdownCosts::default()))]);
        let hdr = EbsHeader {
            version: EbsHeader::VERSION,
            op: EbsOp::ReadReq,
            flags: 0,
            path_id: 0,
            vd_id: 1,
            rpc_id: 1,
            pkt_id: 0,
            total_pkts: 1,
            block_addr: 0,
            len: 4096,
            payload_crc: 0,
            path_seq: 0,
            segment_id: 0,
        };
        let mut ctx = PacketCtx::new(hdr, Bytes::new());
        assert!(p.process(SimTime::ZERO, &mut ctx).is_some());
        let prog = p.describe_p4("PushdownPath");
        assert!(prog.contains("pushdown.apply()"), "{prog}");
    }

    #[test]
    fn resource_estimate_is_separate_from_table3() {
        let table3 = crate::resources::estimate(&crate::resources::SolarGeometry::default());
        assert!(
            table3.iter().all(|m| m.name != "Pushdown"),
            "pushdown must not change the Table 3 totals"
        );
        let pd = pushdown_estimate();
        assert!(pd.luts > 0 && pd.bram_blocks >= 1);
    }
}
