//! The ALI-DPU's internal interconnect and host PCIe model.
//!
//! §4.2: ALI-DPU predates PCIe 4.0 — its internal PCIe channel is "far
//! less than 100 Gbps" while the Ethernet is 2×25G, so any data path that
//! crosses the internal channel twice (LUNA, RDMA: NIC → DPU memory →
//! NIC, Fig. 10a/b) is throughput-capped at `internal_rate / 2`. SOLAR's
//! FPGA-resident path touches only the *host* PCIe once (DMA to/from
//! guest memory). This module provides both channels as serialized
//! bandwidth resources and the traversal accounting per data-path
//! variant.

use ebs_sim::{Bandwidth, Channel, SimDuration, SimTime};

/// Channel parameters of one DPU.
#[derive(Debug, Clone, Copy)]
pub struct PcieConfig {
    /// The DPU-internal interconnect (NIC ↔ DPU CPU/memory).
    pub internal_rate: Bandwidth,
    /// The host PCIe (DPU ↔ guest memory DMA).
    pub host_rate: Bandwidth,
    /// Per-transfer latency (doorbell + DMA setup).
    pub per_transfer: SimDuration,
}

impl Default for PcieConfig {
    fn default() -> Self {
        PcieConfig {
            // "far less than 100 Gbps": ~64 Gbps effective (PCIe 3.0 x8).
            internal_rate: Bandwidth::from_gbps(64),
            host_rate: Bandwidth::from_gbps(128),
            per_transfer: SimDuration::from_nanos(900),
        }
    }
}

/// How many times each data-path variant crosses each channel per block
/// (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Traversals {
    /// Crossings of the internal DPU channel.
    pub internal: u32,
    /// Crossings of the host PCIe (guest DMA).
    pub host: u32,
}

/// Data-path variants of Fig. 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataPath {
    /// LUNA: NIC → internal PCIe → DPU CPU (stack + SA) → internal PCIe →
    /// NIC side / host DMA.
    Luna,
    /// RDMA: transport offloaded but data still hairpins through DPU
    /// memory for the SA.
    Rdma,
    /// SOLAR with data-plane offload disabled (SOLAR*): protocol is
    /// one-block-one-packet but blocks still cross to DPU memory.
    SolarStar,
    /// SOLAR: FPGA-resident path; only the host DMA touches PCIe.
    Solar,
}

impl DataPath {
    /// Traversal counts per block.
    pub fn traversals(self) -> Traversals {
        match self {
            DataPath::Luna | DataPath::Rdma | DataPath::SolarStar => Traversals {
                internal: 2,
                host: 1,
            },
            DataPath::Solar => Traversals {
                internal: 0,
                host: 1,
            },
        }
    }
}

/// The two PCIe channels of one DPU.
#[derive(Debug)]
pub struct DpuPcie {
    internal: Channel,
    host: Channel,
    /// Extra latency added to every transfer while a stall condition is
    /// active (credit starvation, a misbehaving peer hogging the bus, a
    /// firmware hiccup). Zero = healthy.
    stall: SimDuration,
}

impl DpuPcie {
    /// Build from config.
    pub fn new(cfg: PcieConfig) -> Self {
        DpuPcie {
            internal: Channel::new(cfg.internal_rate, cfg.per_transfer),
            host: Channel::new(cfg.host_rate, cfg.per_transfer),
            stall: SimDuration::ZERO,
        }
    }

    /// Inject (or with `SimDuration::ZERO`, heal) a PCIe stall: every
    /// subsequent transfer pays `extra` on top of its modeled time.
    pub fn set_stall(&mut self, extra: SimDuration) {
        self.stall = extra;
    }

    /// Current stall penalty per transfer (zero = healthy).
    pub fn stall(&self) -> SimDuration {
        self.stall
    }

    /// Move one block of `bytes` along `path`'s PCIe crossings starting at
    /// `now`; returns when the last crossing completes. Zero-crossing
    /// paths return `now` unchanged.
    pub fn transfer_block(&mut self, now: SimTime, path: DataPath, bytes: usize) -> SimTime {
        let t = path.traversals();
        let mut done = now;
        for _ in 0..t.internal {
            done = self.internal.transfer(done, bytes);
        }
        for _ in 0..t.host {
            done = self.host.transfer(done, bytes);
        }
        if done > now {
            // A stalled bus delays any transfer that actually crossed it.
            done += self.stall;
        }
        done
    }

    /// Bytes moved over the internal channel (bottleneck diagnostics).
    pub fn internal_bytes(&self) -> u64 {
        self.internal.bytes_moved()
    }

    /// Internal-channel utilization over `[reset, now]`.
    pub fn internal_utilization(&self, now: SimTime) -> f64 {
        self.internal.utilization(now)
    }

    /// The effective per-direction goodput ceiling the internal channel
    /// imposes on two-crossing paths.
    pub fn internal_goodput_ceiling(&self) -> Bandwidth {
        Bandwidth::from_bps(self.internal.rate().as_bps() / 2)
    }

    /// Reset accounting.
    pub fn reset_stats(&mut self, now: SimTime) {
        self.internal.reset_stats(now);
        self.host.reset_stats(now);
    }
}

impl ebs_obs::Sample for DpuPcie {
    /// Component `dpu.pcie`: the Fig. 10 internal-interconnect bottleneck.
    fn sample_into(&self, now: SimTime, m: &mut ebs_obs::Metrics) {
        m.counter_add("dpu.pcie", "internal_bytes", self.internal_bytes());
        m.gauge_set(
            "dpu.pcie",
            "internal_utilization",
            self.internal_utilization(now),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traversal_counts_match_figure_10() {
        assert_eq!(
            DataPath::Luna.traversals(),
            Traversals {
                internal: 2,
                host: 1
            }
        );
        assert_eq!(
            DataPath::Rdma.traversals(),
            Traversals {
                internal: 2,
                host: 1
            }
        );
        assert_eq!(
            DataPath::Solar.traversals(),
            Traversals {
                internal: 0,
                host: 1
            }
        );
    }

    #[test]
    fn solar_skips_internal_channel() {
        let mut pcie = DpuPcie::new(PcieConfig::default());
        pcie.transfer_block(SimTime::ZERO, DataPath::Solar, 4096);
        assert_eq!(pcie.internal_bytes(), 0);
        pcie.transfer_block(SimTime::ZERO, DataPath::Luna, 4096);
        assert_eq!(pcie.internal_bytes(), 2 * 4096);
    }

    #[test]
    fn double_crossing_halves_goodput() {
        let cfg = PcieConfig {
            internal_rate: Bandwidth::from_gbps(64),
            host_rate: Bandwidth::from_gbps(10_000), // not binding here
            per_transfer: SimDuration::ZERO,
        };
        let mut pcie = DpuPcie::new(cfg);
        // Saturate with Luna blocks for a simulated millisecond.
        let mut now = SimTime::ZERO;
        let mut blocks = 0u64;
        while now < SimTime::from_millis(1) {
            now = pcie.transfer_block(now, DataPath::Luna, 4096);
            blocks += 1;
        }
        // bits moved over 1 ms: Gbps = bits / 1e6.
        let gbps = blocks as f64 * 4096.0 * 8.0 / 1e6;
        assert!(
            (gbps - 32.0).abs() < 1.0,
            "expected ~32 Gbps ceiling, got {gbps}"
        );
        assert_eq!(pcie.internal_goodput_ceiling(), Bandwidth::from_gbps(32));
    }

    #[test]
    fn solar_reaches_line_rate_unhindered() {
        let mut pcie = DpuPcie::new(PcieConfig {
            per_transfer: SimDuration::ZERO,
            ..PcieConfig::default()
        });
        let mut now = SimTime::ZERO;
        let mut blocks = 0u64;
        while now < SimTime::from_millis(1) {
            now = pcie.transfer_block(now, DataPath::Solar, 4096);
            blocks += 1;
        }
        let gbps = blocks as f64 * 4096.0 * 8.0 / 1e9 * 1e3;
        assert!(gbps > 100.0, "host PCIe is plenty: {gbps} Gbps");
    }

    #[test]
    fn stall_adds_latency_until_healed() {
        let mut pcie = DpuPcie::new(PcieConfig::default());
        let healthy = pcie.transfer_block(SimTime::ZERO, DataPath::Solar, 4096);
        pcie.set_stall(SimDuration::from_micros(50));
        let stalled = pcie.transfer_block(healthy, DataPath::Solar, 4096);
        assert!(stalled - healthy >= SimDuration::from_micros(50));
        pcie.set_stall(SimDuration::ZERO);
        let again = pcie.transfer_block(stalled, DataPath::Solar, 4096);
        assert!(again - stalled < SimDuration::from_micros(50));
    }

    #[test]
    fn fixed_latency_applies_per_crossing() {
        let cfg = PcieConfig {
            internal_rate: Bandwidth::from_gbps(1000),
            host_rate: Bandwidth::from_gbps(1000),
            per_transfer: SimDuration::from_micros(1),
        };
        let mut pcie = DpuPcie::new(cfg);
        let done = pcie.transfer_block(SimTime::ZERO, DataPath::Luna, 64);
        // 3 crossings ≈ 3us + tiny serialization.
        assert!(done >= SimTime::from_micros(3));
        assert!(done < SimTime::from_micros(4));
    }
}
