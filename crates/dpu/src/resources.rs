//! FPGA resource estimation (Table 3).
//!
//! A first-order model of LUT and BRAM consumption of each SOLAR module on
//! the ALI-DPU FPGA. The device envelope and per-module coefficients are
//! calibrated so that the paper's production geometry reproduces Table 3
//! (Addr 5.1%/8.1%, Block 0.2%/8.6%, QoS 0.1%/0.4%, SEC 2.8%/0.9%, CRC
//! 0.3%/0.0%, total 8.5%/18.2%); the value of the model is that it
//! extrapolates to *other* geometries (more paths, bigger tables) for the
//! scalability ablations.

/// FPGA device envelope (a VU9P-class part, typical of the era's DPUs).
#[derive(Debug, Clone, Copy)]
pub struct FpgaDevice {
    /// Total 6-input LUTs.
    pub total_luts: u64,
    /// Total 36 Kb BRAM blocks.
    pub total_bram_blocks: u64,
}

impl Default for FpgaDevice {
    fn default() -> Self {
        FpgaDevice {
            total_luts: 1_182_000,
            total_bram_blocks: 2_160,
        }
    }
}

/// Bits per 36 Kb BRAM block.
const BRAM_BITS: u64 = 36_864;

/// Geometry of the SOLAR tables on the DPU.
#[derive(Debug, Clone, Copy)]
pub struct SolarGeometry {
    /// Addr table entries (max in-flight read packets).
    pub addr_entries: u64,
    /// Bits per Addr entry: rpc_id tag + pkt_id + guest addr + valid.
    pub addr_entry_bits: u64,
    /// Block (segment) table entries.
    pub block_entries: u64,
    /// Bits per Block entry: segment id + server + offset.
    pub block_entry_bits: u64,
    /// QoS table entries (virtual disks on this host).
    pub qos_entries: u64,
    /// Bits per QoS entry: two token buckets + spec.
    pub qos_entry_bits: u64,
}

impl Default for SolarGeometry {
    fn default() -> Self {
        SolarGeometry {
            addr_entries: 64 * 1024,
            addr_entry_bits: 96,
            block_entries: 128 * 1024,
            block_entry_bits: 52,
            qos_entries: 4 * 1024,
            qos_entry_bits: 80,
        }
    }
}

/// Resource usage of one module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModuleUsage {
    /// Module label.
    pub name: &'static str,
    /// LUTs consumed.
    pub luts: u64,
    /// BRAM blocks consumed.
    pub bram_blocks: u64,
}

impl ModuleUsage {
    /// Percentages of the device.
    pub fn percent(&self, dev: &FpgaDevice) -> (f64, f64) {
        (
            100.0 * self.luts as f64 / dev.total_luts as f64,
            100.0 * self.bram_blocks as f64 / dev.total_bram_blocks as f64,
        )
    }
}

fn bram_blocks(entries: u64, bits: u64) -> u64 {
    (entries * bits).div_ceil(BRAM_BITS)
}

/// Estimate the five SOLAR modules for a geometry.
///
/// Coefficient rationale:
/// * **Addr** is LUT-heavy: it needs hashed exact-match lookup *and*
///   line-rate insert/delete from the control plane — two ported access
///   paths plus comparators over a 80-bit key (~0.9 LUT/entry-way at the
///   chosen associativity, amortized: `55_000 + entries/16`).
/// * **Block** is a direct-indexed SRAM read (LBA high bits), almost no
///   logic: flat ~2.4 K LUTs.
/// * **QoS** is two adders and a comparator per bucket: flat ~1.2 K LUTs.
/// * **SEC** dominates logic: a pipelined cipher datapath (~33 K LUTs)
///   with key schedule in BRAM.
/// * **CRC** is a slice-by-N XOR tree: ~3.5 K LUTs, zero BRAM.
pub fn estimate(geom: &SolarGeometry) -> Vec<ModuleUsage> {
    vec![
        ModuleUsage {
            name: "Addr",
            luts: 55_000 + geom.addr_entries / 16,
            bram_blocks: bram_blocks(geom.addr_entries, geom.addr_entry_bits),
        },
        ModuleUsage {
            name: "Block",
            luts: 2_400,
            bram_blocks: bram_blocks(geom.block_entries, geom.block_entry_bits),
        },
        ModuleUsage {
            name: "QoS",
            luts: 1_200,
            bram_blocks: bram_blocks(geom.qos_entries, geom.qos_entry_bits),
        },
        ModuleUsage {
            name: "SEC",
            luts: 33_000,
            bram_blocks: 19,
        },
        ModuleUsage {
            name: "CRC",
            luts: 3_500,
            bram_blocks: 0,
        },
    ]
}

/// Sum a set of module usages.
pub fn total(usages: &[ModuleUsage]) -> ModuleUsage {
    ModuleUsage {
        name: "Total",
        luts: usages.iter().map(|u| u.luts).sum(),
        bram_blocks: usages.iter().map(|u| u.bram_blocks).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_reproduces_table3() {
        let dev = FpgaDevice::default();
        let usages = estimate(&SolarGeometry::default());
        let expect = [
            ("Addr", 5.1, 8.1),
            ("Block", 0.2, 8.6),
            ("QoS", 0.1, 0.4),
            ("SEC", 2.8, 0.9),
            ("CRC", 0.3, 0.0),
        ];
        for ((name, lut_pct, bram_pct), usage) in expect.iter().zip(usages.iter()) {
            assert_eq!(*name, usage.name);
            let (l, b) = usage.percent(&dev);
            assert!((l - lut_pct).abs() < 0.35, "{name} LUT {l} vs {lut_pct}");
            assert!((b - bram_pct).abs() < 0.35, "{name} BRAM {b} vs {bram_pct}");
        }
        let t = total(&usages);
        let (l, b) = t.percent(&dev);
        assert!((l - 8.5).abs() < 0.6, "total LUT {l}");
        assert!((b - 18.2).abs() < 0.8, "total BRAM {b}");
    }

    #[test]
    fn bigger_tables_cost_more_bram() {
        let small = estimate(&SolarGeometry::default());
        let big = estimate(&SolarGeometry {
            addr_entries: 256 * 1024,
            ..SolarGeometry::default()
        });
        assert!(big[0].bram_blocks > 3 * small[0].bram_blocks);
        assert_eq!(big[4], small[4], "CRC unaffected by table size");
    }

    #[test]
    fn bram_block_rounding() {
        assert_eq!(bram_blocks(1, 1), 1);
        assert_eq!(bram_blocks(0, 96), 0);
        assert_eq!(bram_blocks(384, 96), 1); // exactly one block
        assert_eq!(bram_blocks(385, 96), 2);
    }
}
