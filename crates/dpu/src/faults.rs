//! Hardware fault injection.
//!
//! §4.4 / Fig. 11: FPGAs flip bits — in datapath registers, table SRAM and
//! CRC accumulators — and such flips were the largest root cause (37%) of
//! CRC-detected corruption events in two years of production. This module
//! injects those faults so the software aggregation check (`ebs-crc`) can
//! be shown to catch them.

use rand::rngs::SmallRng;
use rand::Rng;

/// Root causes of data corruption, with the production mix of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptionCause {
    /// FPGA register/SRAM bit flip ("FPGA flapping").
    FpgaFlap,
    /// Software bug writing bad bytes.
    SoftwareBug,
    /// Configuration error steering data to the wrong place.
    ConfigError,
    /// Machine-check exception: CPU/cache/memory/bus hardware error.
    MceError,
}

impl CorruptionCause {
    /// All causes with the approximate production shares of Fig. 11
    /// (FPGA is stated to be 37%; the remainder is read off the chart).
    pub const MIX: [(CorruptionCause, f64); 4] = [
        (CorruptionCause::FpgaFlap, 0.37),
        (CorruptionCause::SoftwareBug, 0.31),
        (CorruptionCause::ConfigError, 0.19),
        (CorruptionCause::MceError, 0.13),
    ];

    /// Display label matching the figure.
    pub fn label(&self) -> &'static str {
        match self {
            CorruptionCause::FpgaFlap => "FPGA flapping",
            CorruptionCause::SoftwareBug => "Software bug",
            CorruptionCause::ConfigError => "Config error",
            CorruptionCause::MceError => "MCE error",
        }
    }

    /// Sample a cause from the production mix.
    pub fn sample(rng: &mut impl Rng) -> CorruptionCause {
        let x: f64 = rng.gen();
        let mut acc = 0.0;
        for (cause, p) in Self::MIX {
            acc += p;
            if x < acc {
                return cause;
            }
        }
        CorruptionCause::MceError
    }
}

/// Bit-flip injector for the CRC/data path of the FPGA model.
#[derive(Debug)]
pub struct BitFlipInjector {
    rng: SmallRng,
    /// Probability that a given block experiences a flip at all.
    pub flip_rate: f64,
    /// Given a flip, probability it lands in the CRC register rather than
    /// the payload datapath.
    pub crc_register_share: f64,
    flips_injected: u64,
}

impl BitFlipInjector {
    /// An injector with the given per-block flip probability.
    pub fn new(seed: u64, flip_rate: f64) -> Self {
        BitFlipInjector {
            rng: ebs_sim::rng::stream(seed, "fpga-bitflip"),
            flip_rate,
            crc_register_share: 0.3,
            flips_injected: 0,
        }
    }

    /// Total flips injected so far.
    pub fn flips_injected(&self) -> u64 {
        self.flips_injected
    }

    /// Maybe flip a bit in the 32-bit CRC register: returns the XOR mask.
    pub fn maybe_flip_u32(&mut self) -> Option<u32> {
        if self.rng.gen::<f64>() < self.flip_rate * self.crc_register_share {
            self.flips_injected += 1;
            Some(1u32 << self.rng.gen_range(0..32))
        } else {
            None
        }
    }

    /// Maybe flip a payload bit (post-CRC): returns (byte, bit).
    pub fn maybe_flip_payload(&mut self, len: usize) -> Option<(usize, u8)> {
        if len > 0 && self.rng.gen::<f64>() < self.flip_rate * (1.0 - self.crc_register_share) {
            self.flips_injected += 1;
            Some((self.rng.gen_range(0..len), self.rng.gen_range(0..8)))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rate_zero_never_flips() {
        let mut inj = BitFlipInjector::new(1, 0.0);
        for _ in 0..1000 {
            assert!(inj.maybe_flip_u32().is_none());
            assert!(inj.maybe_flip_payload(4096).is_none());
        }
        assert_eq!(inj.flips_injected(), 0);
    }

    #[test]
    fn rate_one_always_flips_somewhere() {
        let mut inj = BitFlipInjector::new(1, 1.0);
        inj.crc_register_share = 1.0;
        for _ in 0..100 {
            assert!(inj.maybe_flip_u32().is_some());
        }
        assert_eq!(inj.flips_injected(), 100);
    }

    #[test]
    fn flip_positions_in_range() {
        let mut inj = BitFlipInjector::new(2, 1.0);
        inj.crc_register_share = 0.0;
        for _ in 0..100 {
            let (byte, bit) = inj.maybe_flip_payload(64).unwrap();
            assert!(byte < 64);
            assert!(bit < 8);
        }
    }

    #[test]
    fn cause_mix_sums_to_one() {
        let total: f64 = CorruptionCause::MIX.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampled_mix_matches_production_shares() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 50_000;
        let mut fpga = 0;
        for _ in 0..n {
            if CorruptionCause::sample(&mut rng) == CorruptionCause::FpgaFlap {
                fpga += 1;
            }
        }
        let share = fpga as f64 / n as f64;
        assert!((share - 0.37).abs() < 0.02, "share {share}");
    }
}
