//! The programmable packet-processing pipeline (FPGA / P4 model).
//!
//! §4.6's key observation: because SOLAR makes every packet one block, the
//! whole SA data path is expressible as a **match-action pipeline** — the
//! abstraction commodity DPU ASICs expose through P4. This module models
//! exactly that: a chain of stages, each a table lookup or a fixed
//! transform, with per-stage latency and resource-accountable tables.
//! `describe_p4()` renders the pipeline as a P4-style control block to
//! make the expressibility claim concrete.

use bytes::Bytes;
use ebs_sim::{SimDuration, SimTime};
use ebs_wire::{EbsHeader, EbsOp};

use crate::faults::BitFlipInjector;

/// Outcome of pushing a packet through a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageVerdict {
    /// Continue to the next stage.
    Forward,
    /// Drop the packet (e.g. no table entry).
    Drop,
}

/// A packet (or NVMe command turned packet) traversing the pipeline.
#[derive(Debug)]
pub struct PacketCtx {
    /// EBS header under construction / inspection.
    pub hdr: EbsHeader,
    /// Block payload.
    pub payload: Bytes,
    /// Guest memory address for DMA (reads: from the Addr table).
    pub dma_addr: Option<u64>,
    /// Policy delay imposed by the QoS stage (applied by the host; kept
    /// separate because the paper excludes it from latency accounting).
    pub qos_delay: SimDuration,
}

impl PacketCtx {
    /// A context for a fresh header.
    pub fn new(hdr: EbsHeader, payload: Bytes) -> Self {
        PacketCtx {
            hdr,
            payload,
            dma_addr: None,
            qos_delay: SimDuration::ZERO,
        }
    }
}

/// One pipeline stage.
pub trait Stage {
    /// Stage name (for `describe_p4` and diagnostics).
    fn name(&self) -> &'static str;
    /// Fixed traversal latency of the stage's hardware.
    fn latency(&self) -> SimDuration;
    /// Process a packet.
    fn process(&mut self, now: SimTime, ctx: &mut PacketCtx) -> StageVerdict;
    /// P4-style summary of the stage ("table" or "action" + key fields).
    fn p4_summary(&self) -> String;
}

/// The QoS stage: dual-token-bucket admission in hardware.
pub struct QosStage {
    table: ebs_sa::QosTable,
    latency: SimDuration,
}

impl QosStage {
    /// Wrap a QoS table as a hardware stage.
    pub fn new(table: ebs_sa::QosTable) -> Self {
        QosStage {
            table,
            latency: SimDuration::from_nanos(40),
        }
    }

    /// Mutable access for the control plane (spec updates).
    pub fn table_mut(&mut self) -> &mut ebs_sa::QosTable {
        &mut self.table
    }
}

impl Stage for QosStage {
    fn name(&self) -> &'static str {
        "QoS"
    }
    fn latency(&self) -> SimDuration {
        self.latency
    }
    fn process(&mut self, now: SimTime, ctx: &mut PacketCtx) -> StageVerdict {
        ctx.qos_delay = self.table.admit(now, ctx.hdr.vd_id, ctx.hdr.len as usize);
        StageVerdict::Forward
    }
    fn p4_summary(&self) -> String {
        "table qos { key = { hdr.ebs.vd_id : exact; } actions = { meter_and_stamp; } }".into()
    }
}

/// The Block stage: segment-table lookup (LBA → segment/block-server).
pub struct BlockStage {
    table: ebs_sa::SegmentTable,
    latency: SimDuration,
    misses: u64,
}

impl BlockStage {
    /// Wrap a segment table as a hardware stage.
    pub fn new(table: ebs_sa::SegmentTable) -> Self {
        BlockStage {
            table,
            latency: SimDuration::from_nanos(60),
            misses: 0,
        }
    }

    /// Lookup misses (packets dropped for unknown addresses).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

impl Stage for BlockStage {
    fn name(&self) -> &'static str {
        "Block"
    }
    fn latency(&self) -> SimDuration {
        self.latency
    }
    fn process(&mut self, _now: SimTime, ctx: &mut PacketCtx) -> StageVerdict {
        match self.table.lookup(ctx.hdr.vd_id, ctx.hdr.block_addr) {
            Ok(entry) => {
                ctx.hdr.segment_id = entry.segment_id;
                StageVerdict::Forward
            }
            Err(_) => {
                self.misses += 1;
                StageVerdict::Drop
            }
        }
    }
    fn p4_summary(&self) -> String {
        "table block { key = { hdr.ebs.vd_id : exact; hdr.ebs.lba >> 9 : exact; } actions = { set_segment; drop; } }".into()
    }
}

/// The Addr stage: (rpc, pkt) → guest DMA address, for READ responses.
pub struct AddrStage {
    table: ebs_sim::FxHashMap<(u64, u16), u64>,
    latency: SimDuration,
    misses: u64,
}

impl AddrStage {
    /// Empty Addr table.
    pub fn new() -> Self {
        AddrStage {
            table: ebs_sim::FxHashMap::default(),
            latency: SimDuration::from_nanos(50),
            misses: 0,
        }
    }

    /// Control plane: register an expected response packet.
    pub fn insert(&mut self, rpc_id: u64, pkt_id: u16, guest_addr: u64) {
        self.table.insert((rpc_id, pkt_id), guest_addr);
    }

    /// Live entries (sizing / leak checks).
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

impl Default for AddrStage {
    fn default() -> Self {
        Self::new()
    }
}

impl Stage for AddrStage {
    fn name(&self) -> &'static str {
        "Addr"
    }
    fn latency(&self) -> SimDuration {
        self.latency
    }
    fn process(&mut self, _now: SimTime, ctx: &mut PacketCtx) -> StageVerdict {
        // Only read responses consult the Addr table; the entry is
        // consumed so the table stays small (§4.5: "its entry is cleaned
        // afterward without interrupting the CPU").
        if ctx.hdr.op != EbsOp::ReadResp {
            return StageVerdict::Forward;
        }
        match self.table.remove(&(ctx.hdr.rpc_id, ctx.hdr.pkt_id)) {
            Some(addr) => {
                ctx.dma_addr = Some(addr);
                StageVerdict::Forward
            }
            None => {
                self.misses += 1;
                StageVerdict::Drop
            }
        }
    }
    fn p4_summary(&self) -> String {
        "table addr { key = { hdr.ebs.rpc_id : exact; hdr.ebs.pkt_id : exact; } actions = { set_dma_addr_and_clean; drop; } }".into()
    }
}

/// The CRC stage: per-block raw CRC32 in hardware — with optional bit-flip
/// fault injection, because the FPGA is itself the dominant corruption
/// source (Fig. 11).
pub struct CrcStage {
    latency: SimDuration,
    injector: Option<BitFlipInjector>,
    blocks: u64,
    block_size: usize,
}

impl CrcStage {
    /// A CRC stage for `block_size` blocks, optionally fault-injected.
    pub fn new(block_size: usize, injector: Option<BitFlipInjector>) -> Self {
        CrcStage {
            latency: SimDuration::from_nanos(80),
            injector,
            blocks: 0,
            block_size,
        }
    }

    /// Blocks processed.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }
}

impl Stage for CrcStage {
    fn name(&self) -> &'static str {
        "CRC"
    }
    fn latency(&self) -> SimDuration {
        self.latency
    }
    fn process(&mut self, _now: SimTime, ctx: &mut PacketCtx) -> StageVerdict {
        self.blocks += 1;
        if ctx.payload.is_empty() {
            // Latency-only simulations carry no real payload; keep the
            // header CRC untouched.
            return StageVerdict::Forward;
        }
        let mut crc = ebs_crc::block_crc_raw(&ctx.payload, self.block_size);
        if let Some(inj) = self.injector.as_mut() {
            // A flip can hit the CRC register or the data path after CRC.
            if let Some(flip) = inj.maybe_flip_u32() {
                crc ^= flip;
            } else if let Some((byte, bit)) = inj.maybe_flip_payload(ctx.payload.len()) {
                // Copy-on-corrupt through the block pool: no fresh heap
                // allocation on the recycled path.
                let mut data = ebs_wire::pool::with_default_pool(|p| p.take_copy(&ctx.payload));
                data[byte] ^= 1 << bit;
                ctx.payload = data.freeze().into_bytes();
            }
        }
        ctx.hdr.payload_crc = crc;
        StageVerdict::Forward
    }
    fn p4_summary(&self) -> String {
        "action crc32 { hdr.ebs.payload_crc = crc32_raw(payload); }".into()
    }
}

/// The SEC stage: per-block encryption (ChaCha20 model of the opaque
/// production cipher).
pub struct SecStage {
    engine: ebs_crypto::SecEngine,
    latency: SimDuration,
    decrypt: bool,
}

impl SecStage {
    /// An encrypting (TX) stage.
    pub fn encryptor(engine: ebs_crypto::SecEngine) -> Self {
        SecStage {
            engine,
            latency: SimDuration::from_nanos(120),
            decrypt: false,
        }
    }

    /// A decrypting (RX) stage.
    pub fn decryptor(engine: ebs_crypto::SecEngine) -> Self {
        SecStage {
            engine,
            latency: SimDuration::from_nanos(120),
            decrypt: true,
        }
    }
}

impl Stage for SecStage {
    fn name(&self) -> &'static str {
        "SEC"
    }
    fn latency(&self) -> SimDuration {
        self.latency
    }
    fn process(&mut self, _now: SimTime, ctx: &mut PacketCtx) -> StageVerdict {
        if !self.engine.is_enabled() || ctx.payload.is_empty() {
            return StageVerdict::Forward;
        }
        // Cipher in place inside a pooled buffer: the old payload handle is
        // released (recycling its block if this stage held the last clone)
        // and the transformed block recycles in turn downstream.
        let mut data = ebs_wire::pool::with_default_pool(|p| p.take_copy(&ctx.payload));
        if self.decrypt {
            self.engine
                .decrypt_block(ctx.hdr.vd_id, ctx.hdr.block_addr, &mut data);
        } else {
            self.engine
                .encrypt_block(ctx.hdr.vd_id, ctx.hdr.block_addr, &mut data);
            ctx.hdr.flags |= ebs_wire::FLAG_ENCRYPTED;
        }
        ctx.payload = data.freeze().into_bytes();
        StageVerdict::Forward
    }
    fn p4_summary(&self) -> String {
        if self.decrypt {
            "action sec_decrypt { payload = chacha20(vd_key, hdr.ebs.lba, payload); }".into()
        } else {
            "action sec_encrypt { payload = chacha20(vd_key, hdr.ebs.lba, payload); hdr.ebs.flags |= ENC; }".into()
        }
    }
}

/// A complete pipeline: ordered stages.
pub struct Pipeline {
    stages: Vec<Box<dyn Stage>>,
    processed: u64,
    dropped: u64,
}

impl Pipeline {
    /// Build from stages.
    pub fn new(stages: Vec<Box<dyn Stage>>) -> Self {
        Pipeline {
            stages,
            processed: 0,
            dropped: 0,
        }
    }

    /// Push one packet through; returns the pipeline latency, or `None`
    /// if a stage dropped it.
    pub fn process(&mut self, now: SimTime, ctx: &mut PacketCtx) -> Option<SimDuration> {
        self.processed += 1;
        let mut total = SimDuration::ZERO;
        for stage in &mut self.stages {
            total += stage.latency();
            if stage.process(now, ctx) == StageVerdict::Drop {
                self.dropped += 1;
                return None;
            }
        }
        Some(total)
    }

    /// Packets pushed through.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Packets dropped by stages.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Stage access by name (for control-plane updates).
    pub fn stage_mut(&mut self, name: &str) -> Option<&mut Box<dyn Stage>> {
        self.stages.iter_mut().find(|s| s.name() == name)
    }

    /// Render the pipeline as a P4-style control block (§4.6's
    /// demonstration that the SA data path fits the DPU's programmable
    /// pipeline).
    pub fn describe_p4(&self, control_name: &str) -> String {
        let mut out =
            format!("control {control_name}(inout headers hdr, inout payload_t payload) {{\n");
        for s in &self.stages {
            out.push_str("    ");
            out.push_str(&s.p4_summary());
            out.push('\n');
        }
        out.push_str("    apply {\n");
        for s in &self.stages {
            out.push_str(&format!("        {}.apply();\n", s.name().to_lowercase()));
        }
        out.push_str("    }\n}\n");
        out
    }
}

impl ebs_obs::Sample for Pipeline {
    /// Component `dpu.pipeline`: match-action throughput and stage drops.
    fn sample_into(&self, _now: SimTime, m: &mut ebs_obs::Metrics) {
        m.counter_add("dpu.pipeline", "processed", self.processed);
        m.counter_add("dpu.pipeline", "dropped", self.dropped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_sa::{QosSpec, SegmentTable};

    fn hdr(op: EbsOp, vd: u64, addr: u64) -> EbsHeader {
        EbsHeader {
            version: EbsHeader::VERSION,
            op,
            flags: 0,
            path_id: 0,
            vd_id: vd,
            rpc_id: 1,
            pkt_id: 0,
            total_pkts: 1,
            block_addr: addr,
            len: 4096,
            payload_crc: 0,
            path_seq: 0,
            segment_id: 0,
        }
    }

    fn write_pipeline() -> Pipeline {
        let mut seg = SegmentTable::new(512);
        seg.provision(1, 1024, |_| 0);
        let mut qos = ebs_sa::QosTable::new();
        qos.set_spec(1, QosSpec::unlimited());
        Pipeline::new(vec![
            Box::new(QosStage::new(qos)),
            Box::new(BlockStage::new(seg)),
            Box::new(CrcStage::new(4096, None)),
            Box::new(SecStage::encryptor(ebs_crypto::SecEngine::new([7; 32]))),
        ])
    }

    #[test]
    fn write_path_fills_header() {
        let mut p = write_pipeline();
        let payload = Bytes::from(vec![0xAA; 4096]);
        let mut ctx = PacketCtx::new(hdr(EbsOp::WriteBlock, 1, 5), payload.clone());
        let lat = p.process(SimTime::ZERO, &mut ctx).expect("forwarded");
        assert!(lat > SimDuration::ZERO && lat < SimDuration::from_micros(1));
        assert_ne!(ctx.hdr.segment_id, 0, "block stage resolved the segment");
        assert_ne!(ctx.hdr.payload_crc, 0, "crc stage stamped the checksum");
        assert_ne!(ctx.payload, payload, "sec stage encrypted");
        assert_eq!(
            ctx.hdr.flags & ebs_wire::FLAG_ENCRYPTED,
            ebs_wire::FLAG_ENCRYPTED
        );
    }

    #[test]
    fn crc_is_of_plaintext_before_sec() {
        // Pipeline order: CRC then SEC — the stored CRC covers plaintext.
        let mut p = write_pipeline();
        let payload = Bytes::from(vec![0x5A; 4096]);
        let mut ctx = PacketCtx::new(hdr(EbsOp::WriteBlock, 1, 5), payload.clone());
        p.process(SimTime::ZERO, &mut ctx).unwrap();
        assert_eq!(ctx.hdr.payload_crc, ebs_crc::crc32_raw(&payload));
    }

    #[test]
    fn unknown_lba_drops_in_block_stage() {
        let mut p = write_pipeline();
        let mut ctx = PacketCtx::new(hdr(EbsOp::WriteBlock, 1, 99_999), Bytes::new());
        assert!(p.process(SimTime::ZERO, &mut ctx).is_none());
        assert_eq!(p.dropped(), 1);
    }

    #[test]
    fn addr_stage_consumes_entries() {
        let mut addr = AddrStage::new();
        addr.insert(1, 0, 0xDEAD_0000);
        let mut p = Pipeline::new(vec![Box::new(addr)]);
        let mut ctx = PacketCtx::new(hdr(EbsOp::ReadResp, 1, 5), Bytes::new());
        p.process(SimTime::ZERO, &mut ctx).unwrap();
        assert_eq!(ctx.dma_addr, Some(0xDEAD_0000));
        // Second response for the same (rpc, pkt): entry gone → drop.
        let mut dup = PacketCtx::new(hdr(EbsOp::ReadResp, 1, 5), Bytes::new());
        assert!(p.process(SimTime::ZERO, &mut dup).is_none());
    }

    #[test]
    fn addr_stage_ignores_non_reads() {
        let mut p = Pipeline::new(vec![Box::new(AddrStage::new())]);
        let mut ctx = PacketCtx::new(hdr(EbsOp::WriteBlock, 1, 5), Bytes::new());
        assert!(p.process(SimTime::ZERO, &mut ctx).is_some());
    }

    #[test]
    fn sec_roundtrip_through_stages() {
        let engine = ebs_crypto::SecEngine::new([9; 32]);
        let mut enc = Pipeline::new(vec![Box::new(SecStage::encryptor(engine.clone()))]);
        let mut dec = Pipeline::new(vec![Box::new(SecStage::decryptor(engine))]);
        let plain = Bytes::from(vec![0x42; 4096]);
        let mut ctx = PacketCtx::new(hdr(EbsOp::WriteBlock, 1, 7), plain.clone());
        enc.process(SimTime::ZERO, &mut ctx).unwrap();
        assert_ne!(ctx.payload, plain);
        dec.process(SimTime::ZERO, &mut ctx).unwrap();
        assert_eq!(ctx.payload, plain);
    }

    #[test]
    fn p4_description_lists_all_stages() {
        let p = write_pipeline();
        let prog = p.describe_p4("SolarWritePath");
        assert!(prog.contains("control SolarWritePath"));
        for name in ["qos", "block", "crc", "sec"] {
            assert!(prog.contains(&format!("{name}.apply()")), "{prog}");
        }
        assert!(prog.contains("table qos"));
        assert!(prog.contains("crc32_raw"));
    }
}
