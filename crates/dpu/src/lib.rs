//! # ebs-dpu — the ALI-DPU hardware model
//!
//! Everything the bare-metal transition (§4.1-4.3) adds to the picture:
//!
//! * [`Pipeline`] and its stages — the FPGA match-action pipeline that
//!   SOLAR offloads the SA data path into (QoS / Block / Addr tables, CRC,
//!   SEC, with a P4 rendering per §4.6);
//! * [`DpuPcie`] / [`DataPath`] — the internal-interconnect bottleneck of
//!   Fig. 10: LUNA and RDMA cross it twice per block, SOLAR bypasses it;
//! * [`DpuCpu`] — the six-core infrastructure CPU that everything
//!   software-side contends for;
//! * [`BitFlipInjector`] / [`CorruptionCause`] — FPGA fault injection
//!   behind Fig. 11;
//! * [`resources`] — the LUT/BRAM estimator behind Table 3;
//! * [`PushdownStage`] — storage-function pushdown as a metered pipeline
//!   stage (cycles + PCIe bytes saved), kept out of the Table 3 totals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod pcie;
pub mod pipeline;
pub mod pushdown;
pub mod resources;

pub use faults::{BitFlipInjector, CorruptionCause};
pub use pcie::{DataPath, DpuPcie, PcieConfig, Traversals};
pub use pipeline::{
    AddrStage, BlockStage, CrcStage, PacketCtx, Pipeline, QosStage, SecStage, Stage, StageVerdict,
};
pub use pushdown::{pushdown_estimate, PushdownCosts, PushdownStage};

use ebs_sim::{FifoResource, SimDuration, SimTime};

/// The DPU's infrastructure CPU: a small fixed pool of cores (ALI-DPU has
/// six, §4.2) shared by every hypervisor function that still runs in
/// software. Jobs are FIFO; saturation shows up as queueing delay — the
/// long SA tail SOLAR still exhibits under intensive I/O (§4.7).
#[derive(Debug)]
pub struct DpuCpu {
    cores: FifoResource,
}

/// ALI-DPU core count.
pub const ALI_DPU_CORES: usize = 6;

impl DpuCpu {
    /// A CPU with `cores` cores.
    pub fn new(cores: usize) -> Self {
        DpuCpu {
            cores: FifoResource::new(cores),
        }
    }

    /// Run a job of `work` CPU time submitted at `now`; returns completion.
    pub fn run(&mut self, now: SimTime, work: SimDuration) -> SimTime {
        self.cores.admit(now, work)
    }

    /// Queueing delay a job submitted now would see.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.cores.backlog(now)
    }

    /// Equivalent fully-busy cores since the last reset (Table 1's
    /// "consumed cores" metric).
    pub fn consumed_cores(&self, now: SimTime) -> f64 {
        self.cores.consumed_servers(now)
    }

    /// Core-utilization fraction.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.cores.utilization(now)
    }

    /// Jobs admitted since the last reset.
    pub fn jobs(&self) -> u64 {
        self.cores.jobs()
    }

    /// Total CPU time consumed since the last reset.
    pub fn busy_time(&self) -> SimDuration {
        self.cores.busy_time()
    }

    /// Reset accounting (after warm-up).
    pub fn reset_stats(&mut self, now: SimTime) {
        self.cores.reset_stats(now);
    }
}

impl ebs_obs::Sample for DpuCpu {
    /// Component `dpu.cpu`: job throughput plus the saturation signals
    /// (§4.7's long SA tail is backlog on these cores).
    fn sample_into(&self, now: SimTime, m: &mut ebs_obs::Metrics) {
        m.counter_add("dpu.cpu", "jobs", self.jobs());
        m.counter_add("dpu.cpu", "busy_ns", self.busy_time().as_nanos());
        m.gauge_set("dpu.cpu", "utilization", self.utilization(now));
        m.gauge_set("dpu.cpu", "consumed_cores", self.consumed_cores(now));
        m.gauge_set("dpu.cpu", "backlog_ns", self.backlog(now).as_nanos() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_queues_when_saturated() {
        let mut cpu = DpuCpu::new(2);
        let now = SimTime::ZERO;
        let work = SimDuration::from_micros(10);
        assert_eq!(cpu.run(now, work), SimTime::from_micros(10));
        assert_eq!(cpu.run(now, work), SimTime::from_micros(10));
        assert_eq!(
            cpu.run(now, work),
            SimTime::from_micros(20),
            "third job queues"
        );
        assert!(cpu.backlog(now) > SimDuration::ZERO);
    }

    #[test]
    fn consumed_cores_metric() {
        let mut cpu = DpuCpu::new(4);
        for _ in 0..4 {
            cpu.run(SimTime::ZERO, SimDuration::from_micros(100));
        }
        let consumed = cpu.consumed_cores(SimTime::from_micros(100));
        assert!((consumed - 4.0).abs() < 1e-9);
    }
}
