#!/usr/bin/env python3
"""Compare a fresh benchmark JSON against the committed baseline.

Guards the experiment harness against performance and fidelity regressions:

* **wall-clock**: any experiment more than WALL_TOL (10%) slower than the
  baseline fails the comparison (total wall time too);
* **metrics**: any simulation metric (latency medians, throughput, hung-I/O
  counts, ...) that drifts more than METRIC_TOL (1%) relative fails — the
  simulator is deterministic, so metric drift means behaviour changed, not
  noise.

Works on any file with the BENCH_RESULTS.json schema — the fleet suite's
BENCH_FLEET.json gets the same gates:

    cargo bench -p ebs-bench --bench experiments -- --quick
    python3 scripts/bench_compare.py                      # BENCH_RESULTS.json
    cargo bench -p ebs-bench --bench fleet
    python3 scripts/bench_compare.py BENCH_FLEET.json     # fleet suite

Defaults: fresh = ./BENCH_RESULTS.json (just regenerated, working tree),
baseline = `git show HEAD:<fresh file name>` (the committed one).
Experiment "notes" (wall-derived occupancy/stall shares, speedup ratios)
are rendered into target/bench-wall-deltas.txt but never gated.
Exit code 0 = within tolerance, 1 = regression, 2 = usage/parse error.
"""

import json
import subprocess
import sys
from pathlib import Path

WALL_TOL = 0.10  # >10% slower wall-clock = regression
METRIC_TOL = 0.01  # >1% relative metric drift = regression
# Sub-second wall times are scheduler noise, not signal.
WALL_FLOOR_S = 1.0


def load_fresh(path):
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read fresh results {path}: {e}")
        sys.exit(2)


def load_baseline(arg, fresh_path):
    if arg is not None:
        return load_fresh(arg)
    name = Path(fresh_path).name
    try:
        blob = subprocess.run(
            ["git", "show", f"HEAD:{name}"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        return json.loads(blob)
    except (subprocess.CalledProcessError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read committed baseline HEAD:{name}: {e}")
        sys.exit(2)


def by_id(doc, which):
    """Index experiments by id, tolerating malformed entries.

    An experiment record without an "id" (hand-edited baseline, truncated
    write) would otherwise KeyError deep in the comparison; report it and
    exit with the usage/parse code instead.
    """
    out = {}
    for i, e in enumerate(doc.get("experiments", [])):
        if not isinstance(e, dict) or "id" not in e:
            print(f"bench_compare: {which} experiments[{i}] has no 'id' field")
            sys.exit(2)
        out[e["id"]] = e
    return out


def wall_delta_table(fresh, base, fresh_exps, base_exps):
    """Per-experiment wall-clock deltas vs the baseline, as table rows.

    Covers the union of experiment ids (new/missing ones get a '-') so
    the table is a complete picture of where suite time went, not just
    of what regressed. Printed on every run and written to
    target/bench-wall-deltas.txt for the CI artifact upload.
    """
    rows = [("experiment", "base (s)", "fresh (s)", "delta (s)", "delta (%)")]
    ids = sorted(set(base_exps) | set(fresh_exps))
    ids.append("total")
    for exp_id in ids:
        if exp_id == "total":
            bw = base.get("total_wall_s")
            fw = fresh.get("total_wall_s")
        else:
            bw = base_exps[exp_id].get("wall_s") if exp_id in base_exps else None
            fw = fresh_exps[exp_id].get("wall_s") if exp_id in fresh_exps else None
        cells = [
            exp_id,
            f"{bw:.2f}" if bw is not None else "-",
            f"{fw:.2f}" if fw is not None else "-",
        ]
        if bw is not None and fw is not None:
            cells.append(f"{fw - bw:+.2f}")
            cells.append(f"{(fw / bw - 1) * 100:+.1f}" if bw else "-")
        else:
            cells.extend(["-", "-"])
        rows.append(tuple(cells))
    widths = [max(len(r[i]) for r in rows) for i in range(5)]
    lines = [
        "  ".join(c.ljust(w) if i == 0 else c.rjust(w) for i, (c, w) in enumerate(zip(r, widths)))
        for r in rows
    ]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def main():
    fresh_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_RESULTS.json"
    base_arg = sys.argv[2] if len(sys.argv) > 2 else None
    fresh = load_fresh(fresh_path)
    base = load_baseline(base_arg, fresh_path)

    if fresh.get("quick") != base.get("quick"):
        print(
            "bench_compare: quick-mode mismatch "
            f"(fresh quick={fresh.get('quick')}, baseline quick={base.get('quick')}) "
            "— compare like with like"
        )
        sys.exit(2)

    failures = []
    fresh_exps, base_exps = by_id(fresh, "fresh"), by_id(base, "baseline")

    table = wall_delta_table(fresh, base, fresh_exps, base_exps)
    # Fresh-run notes (per-shard occupancy, barrier-stall shares, speedup
    # ratios) ride along under the table: wall-derived context, not gates.
    notes = [
        f"note {e['id']}: {n}"
        for e in fresh.get("experiments", [])
        for n in e.get("notes", [])
        if isinstance(n, str)
    ]
    report = table + ("\n" + "\n".join(notes) if notes else "")
    print("bench_compare: per-experiment wall-clock deltas:")
    print(report)
    try:
        out = Path("target/bench-wall-deltas.txt")
        out.parent.mkdir(exist_ok=True)
        out.write_text(report + "\n")
    except OSError as e:
        print(f"bench_compare: NOTE could not write {out}: {e}")

    # Experiments only in the fresh run are new work, not regressions —
    # report them so the baseline gets refreshed, but don't fail.
    for exp_id in sorted(set(fresh_exps) - set(base_exps)):
        print(f"bench_compare: NOTE {exp_id}: new experiment, not in baseline")

    for exp_id, b in sorted(base_exps.items()):
        f = fresh_exps.get(exp_id)
        if f is None:
            failures.append(f"{exp_id}: missing from fresh results")
            continue

        bw, fw = b.get("wall_s", 0.0), f.get("wall_s", 0.0)
        if bw >= WALL_FLOOR_S and fw > bw * (1 + WALL_TOL):
            failures.append(
                f"{exp_id}: wall-clock {fw:.2f}s vs baseline {bw:.2f}s "
                f"(+{(fw / bw - 1) * 100:.1f}% > {WALL_TOL * 100:.0f}%)"
            )

        for name, bv in b.get("metrics", {}).items():
            fv = f.get("metrics", {}).get(name)
            if fv is None:
                failures.append(f"{exp_id}.{name}: metric missing from fresh results")
                continue
            if bv == 0.0:
                drift_ok = fv == 0.0
                rel = float("inf") if not drift_ok else 0.0
            else:
                rel = abs(fv - bv) / abs(bv)
                drift_ok = rel <= METRIC_TOL
            if not drift_ok:
                failures.append(
                    f"{exp_id}.{name}: {fv:.4f} vs baseline {bv:.4f} "
                    f"(drift {rel * 100:.2f}% > {METRIC_TOL * 100:.0f}%)"
                )

    bt, ft = base.get("total_wall_s", 0.0), fresh.get("total_wall_s", 0.0)
    if bt >= WALL_FLOOR_S and ft > bt * (1 + WALL_TOL):
        failures.append(
            f"total: wall-clock {ft:.2f}s vs baseline {bt:.2f}s "
            f"(+{(ft / bt - 1) * 100:.1f}% > {WALL_TOL * 100:.0f}%)"
        )

    if failures:
        print(f"bench_compare: {len(failures)} regression(s) vs baseline:")
        for line in failures:
            print(f"  FAIL {line}")
        sys.exit(1)

    delta = (ft / bt - 1) * 100 if bt else 0.0
    print(
        f"bench_compare: OK — {len(base_exps)} experiments within tolerance, "
        f"total wall {ft:.2f}s vs {bt:.2f}s ({delta:+.1f}%)"
    )


if __name__ == "__main__":
    main()
