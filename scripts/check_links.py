#!/usr/bin/env python3
"""Relative-link checker for the repository's markdown.

Scans every tracked *.md file (repo root, docs/, crate READMEs) for
markdown links and inline reference targets, and verifies that every
*relative* target exists in the working tree. External links (http/https/
mailto) are deliberately not fetched — CI must not depend on the network.

Checked:
  [text](relative/path.md)        -> path must exist
  [text](relative/path.md#frag)   -> path must exist (fragment not checked
                                     against headings, except same-file
                                     anchors which are)
  [text](#fragment)               -> a heading in the same file must
                                     slugify to the fragment

Exit status: 0 clean, 1 with any broken link (all reported).
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def md_files():
    out = []
    for dirpath, dirnames, filenames in os.walk(REPO):
        dirnames[:] = [
            d
            for d in dirnames
            if d not in ("target", ".git", ".github", "node_modules")
        ]
        for f in filenames:
            if f.endswith(".md"):
                out.append(os.path.join(dirpath, f))
    return sorted(out)


def slugify(heading):
    """GitHub-style heading -> anchor slug."""
    # Strip markdown emphasis/code markers, then non-word chars.
    h = re.sub(r"[`*_]", "", heading.strip().lower())
    h = re.sub(r"[^\w\- ]", "", h)
    return h.replace(" ", "-")


def check_file(path, errors):
    with open(path, encoding="utf-8") as fh:
        raw = fh.read()
    # Links inside fenced code blocks are examples, not navigation.
    text = CODE_FENCE_RE.sub("", raw)
    anchors = {slugify(h) for h in HEADING_RE.findall(text)}
    rel = os.path.relpath(path, REPO)
    for m in LINK_RE.finditer(text):
        target = m.group(1)
        if target.startswith(EXTERNAL):
            continue
        if target.startswith("#"):
            if target[1:] not in anchors:
                errors.append(f"{rel}: broken same-file anchor {target}")
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = os.path.normpath(os.path.join(os.path.dirname(path), file_part))
        if not os.path.exists(resolved):
            errors.append(f"{rel}: broken relative link {target}")


def main():
    errors = []
    files = md_files()
    for path in files:
        check_file(path, errors)
    if errors:
        print(f"{len(errors)} broken link(s) across {len(files)} markdown files:")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"all relative links resolve across {len(files)} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
