//! Shape assertions on the reproduced figures: we don't chase absolute
//! numbers (our substrate is a simulator, the paper's is a testbed), but
//! who wins, by roughly what factor, and where ceilings bind must match.

use luna_solar::bench::performance;
use luna_solar::stack::Variant;

#[test]
fn fig14_shapes() {
    let (_, nums) = performance::fig14(true);
    let tput = |v: Variant, c: usize| {
        nums.throughput
            .iter()
            .find(|(vv, cc, _)| *vv == v && *cc == c)
            .map(|(_, _, x)| *x)
            .expect("measured")
    };
    let iops = |v: Variant, c: usize| {
        nums.iops
            .iter()
            .find(|(vv, cc, _)| *vv == v && *cc == c)
            .map(|(_, _, x)| *x)
            .expect("measured")
    };

    // (1) Single-core 64K throughput: Solar ≈ +78% over Luna.
    let gain = tput(Variant::Solar, 1) / tput(Variant::Luna, 1);
    assert!(
        (1.4..2.3).contains(&gain),
        "solar/luna 1-core throughput gain {gain:.2} (paper 1.78)"
    );

    // (2) Single-core 4K IOPS: Solar ≈ +46% over Luna; ~150K/core.
    let gain = iops(Variant::Solar, 1) / iops(Variant::Luna, 1);
    assert!(
        (1.2..1.9).contains(&gain),
        "solar/luna 1-core IOPS gain {gain:.2} (paper 1.46)"
    );
    let solar_1core = iops(Variant::Solar, 1);
    assert!(
        (110_000.0..190_000.0).contains(&solar_1core),
        "solar {solar_1core:.0} IOPS/core (paper ~150K)"
    );

    // (3) The PCIe ceiling binds the hairpinning paths at 3 cores but not
    // Solar: Luna/RDMA 3-core 64K throughput pins near the ~4000 MB/s
    // internal-PCIe goodput ceiling; Solar exceeds it.
    let ceiling = 4000.0;
    for v in [Variant::Luna, Variant::Rdma] {
        let t3 = tput(v, 3);
        assert!(
            t3 < ceiling * 1.15,
            "{v:?} 3-core {t3:.0} MB/s must sit at/below the PCIe ceiling"
        );
    }
    assert!(
        tput(Variant::Solar, 3) > ceiling * 1.1,
        "solar 3-core {:.0} MB/s must exceed the hairpin ceiling",
        tput(Variant::Solar, 3)
    );

    // (4) CPU-bound scaling: Luna throughput grows with cores until the
    // ceiling binds.
    assert!(tput(Variant::Luna, 2) > 1.5 * tput(Variant::Luna, 1));
}

#[test]
fn fig15_shapes() {
    let (_, nums) = performance::fig15(true);
    let point = |v: Variant, heavy: bool| {
        nums.points
            .iter()
            .find(|(vv, h, _, _)| *vv == v && *h == heavy)
            .map(|(_, _, med, p99)| (*med, *p99))
            .expect("measured")
    };
    // Light load: Solar close to RDMA; both well under Luna.
    let (luna, _) = point(Variant::Luna, false);
    let (rdma, _) = point(Variant::Rdma, false);
    let (solar, _) = point(Variant::Solar, false);
    assert!(luna > rdma, "light: luna {luna} > rdma {rdma}");
    assert!(solar < rdma * 1.4, "light: solar {solar} ~ rdma {rdma}");

    // Heavy load: everything inflates, Luna by much more than Solar.
    let (luna_h, luna_h99) = point(Variant::Luna, true);
    let (solar_h, solar_h99) = point(Variant::Solar, true);
    assert!(luna_h > luna, "background load must hurt luna");
    assert!(
        luna_h > 1.5 * solar_h,
        "heavy: luna median {luna_h} vs solar {solar_h}"
    );
    assert!(
        luna_h99 > 1.5 * solar_h99,
        "heavy: luna p99 {luna_h99} vs solar {solar_h99}"
    );
}

#[test]
fn fig6_shapes() {
    let (out, nums) = performance::fig6(true);
    // Kernel > Luna > Solar in median 4K write latency (writes dominate
    // production 3.5:1; reads share the NAND floor across stacks).
    let [k, l, s] = nums.write_median_us;
    assert!(k > 1.4 * l, "kernel {k} vs luna {l}");
    assert!(l > 1.25 * s, "luna {l} vs solar {s} (paper: 20-69% cut)");
    // Combined write-latency reduction approaching the paper's fleet-wide
    // -72% (which also includes IOPS-driven load relief we don't model).
    let reduction = 1.0 - s / k;
    assert!(
        (0.4..0.9).contains(&reduction),
        "kernel->solar write reduction {:.0}% (paper 72% fleet-wide)",
        reduction * 100.0
    );
    // Reads: ordering holds even with the common SSD floor.
    let [kr, lr, sr] = nums.read_median_us;
    assert!(kr > lr && lr > sr, "reads ordered: {kr} {lr} {sr}");
    // The rendered output contains all four table views.
    assert_eq!(out.tables.len(), 4);
}

#[test]
fn tab1_renders_all_rows() {
    let (out, metrics) = performance::tab1(true);
    assert_eq!(out.tables.len(), 2);
    for (_, t) in &out.tables {
        assert_eq!(t.len(), 4, "single+stress x kernel+luna");
    }
    // One latency + one cores metric per (variant, NIC) cell.
    assert_eq!(metrics.len(), 8, "{metrics:?}");
}
