//! Reliability integration tests: the Table 2 scenario harness must show
//! the paper's qualitative asymmetry — SOLAR rides through every failure
//! class, LUNA hangs on anything silent or slowly-converging.

use luna_solar::bench::reliability::{run_scenario, Scenario};
use luna_solar::stack::Variant;

#[test]
fn solar_has_zero_hangs_in_every_scenario() {
    for s in Scenario::ALL {
        let hung = run_scenario(s, Variant::Solar, true);
        assert_eq!(
            hung, 0,
            "{s:?}: Solar must never hang an I/O (paper Table 2)"
        );
    }
}

#[test]
fn luna_hangs_on_tor_fail_stop() {
    let hung = run_scenario(Scenario::TorSwitchFailure, Variant::Luna, true);
    assert!(hung > 0, "paper: 216 hangs at full scale");
}

#[test]
fn luna_hangs_on_blackholes() {
    let tor = run_scenario(Scenario::BlackholeTor, Variant::Luna, true);
    let spine = run_scenario(Scenario::BlackholeSpine, Variant::Luna, true);
    assert!(tor > 0, "paper: 611 at full scale");
    assert!(spine > 0, "paper: 1043 at full scale");
}

#[test]
fn luna_survives_benign_scenarios() {
    // Port flaps and fast-converging spine fail-stops recover within TCP
    // retransmission timescales — the paper reports 0 for these rows.
    let port = run_scenario(Scenario::TorPortFailure, Variant::Luna, true);
    assert_eq!(port, 0, "1% transient loss is absorbed by fast retransmit");
    let spine = run_scenario(Scenario::SpineSwitchFailure, Variant::Luna, true);
    assert_eq!(spine, 0, "50ms convergence beats the 1s hang threshold");
}

#[test]
fn luna_hangs_on_heavy_loss() {
    let hung = run_scenario(Scenario::PacketDrop75, Variant::Luna, true);
    assert!(hung > 0, "75% loss stalls TCP (paper: 10 hangs per second)");
}

#[test]
fn luna_hangs_on_reboot_but_recovers_after_heal() {
    let hung = run_scenario(Scenario::TorRebootIsolation, Variant::Luna, true);
    assert!(hung > 0, "paper: 123 at full scale");
}
