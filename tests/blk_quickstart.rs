//! The README's blk-frontend quickstart, verbatim, so the snippet can't
//! drift from the API: mount the virtio-blk-shaped frontend and push a
//! filtered scan down to the storage node.

use luna_solar::sim::SimTime;
use luna_solar::stack::blk::{BlkReq, Predicate, StorageFn};
use luna_solar::stack::{BlkMountConfig, Testbed, TestbedConfig, Variant};
use luna_solar::wire::PushdownPlacement;

#[test]
fn readme_blk_quickstart_runs() {
    let mut tb = Testbed::new(TestbedConfig::small(Variant::Solar, 2, 3));
    tb.blk_mount(
        0,
        BlkMountConfig::with_placement(PushdownPlacement::StorageNode),
    )
    .expect("the full feature set always negotiates");
    let scan = StorageFn::scan(Predicate {
        offset: 0,
        mask: 0x0F,
        value: 0x07,
    });
    tb.schedule_blk(
        SimTime::from_millis(1),
        0,
        0,
        BlkReq::pushdown(0, 0, 64, scan),
    );
    tb.run_until(SimTime::from_secs(1));
    let c = tb.blk_counters();
    assert_eq!((c.completed, c.crc_failures), (1, 0));
}
