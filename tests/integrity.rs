//! Data-integrity integration tests: the full pipeline (CRC stage → SEC
//! stage → wire → decrypt → segment aggregation) with and without FPGA
//! bit-flip injection, across crate boundaries.

use bytes::Bytes;
use luna_solar::crc::{SegmentChecker, SegmentVerdict};
use luna_solar::crypto::SecEngine;
use luna_solar::dpu::{BitFlipInjector, CrcStage, PacketCtx, Pipeline, SecStage, Stage};
use luna_solar::sim::SimTime;
use luna_solar::wire::{EbsHeader, EbsOp};

const BLOCK: usize = 4096;

fn hdr(addr: u64) -> EbsHeader {
    EbsHeader {
        version: EbsHeader::VERSION,
        op: EbsOp::WriteBlock,
        flags: 0,
        path_id: 0,
        vd_id: 9,
        rpc_id: 1,
        pkt_id: addr as u16,
        total_pkts: 8,
        block_addr: addr,
        len: BLOCK as u32,
        payload_crc: 0,
        path_seq: 0,
        segment_id: 5,
    }
}

/// Push `blocks` through a CRC(+SEC) TX pipeline; returns what would go
/// on the wire: (header, ciphertext) pairs.
fn tx_pipeline(blocks: &[Vec<u8>], injector: Option<BitFlipInjector>) -> Vec<(EbsHeader, Bytes)> {
    let engine = SecEngine::new([7; 32]);
    let mut pipeline = Pipeline::new(vec![
        Box::new(CrcStage::new(BLOCK, injector)) as Box<dyn Stage>,
        Box::new(SecStage::encryptor(engine)),
    ]);
    blocks
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let mut ctx = PacketCtx::new(hdr(i as u64), Bytes::from(b.clone()));
            pipeline
                .process(SimTime::ZERO, &mut ctx)
                .expect("forwarded");
            (ctx.hdr, ctx.payload)
        })
        .collect()
}

fn make_blocks(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| (0..BLOCK).map(|j| ((i * 31 + j * 7) % 251) as u8).collect())
        .collect()
}

#[test]
fn clean_pipeline_roundtrips_and_verifies() {
    let blocks = make_blocks(8);
    let wire = tx_pipeline(&blocks, None);
    // Receiver: decrypt, then the *software* aggregation check over
    // plaintext CRCs computed in "hardware" before encryption.
    let engine = SecEngine::new([7; 32]);
    let mut checker = SegmentChecker::new(BLOCK);
    for ((h, ciphertext), original) in wire.iter().zip(blocks.iter()) {
        let mut data = ciphertext.to_vec();
        engine.decrypt_block(h.vd_id, h.block_addr, &mut data);
        assert_eq!(&data, original, "block {} roundtrip", h.block_addr);
        checker.add_block(&data, h.payload_crc);
    }
    assert_eq!(checker.verify_and_reset(), SegmentVerdict::Ok);
}

#[test]
fn fpga_bit_flips_are_always_caught() {
    // Force a flip on every block (all flips land in the CRC register so
    // the per-block flip probability is exactly 1): the aggregation check
    // must flag every segment. Detection is certain for single flips; the
    // test is exact, not probabilistic.
    let mut caught = 0;
    let trials = 50;
    for seed in 0..trials {
        let blocks = make_blocks(4);
        let mut injector = BitFlipInjector::new(seed, 1.0);
        injector.crc_register_share = 1.0;
        let wire = tx_pipeline(&blocks, Some(injector));
        let engine = SecEngine::new([7; 32]);
        let mut checker = SegmentChecker::new(BLOCK);
        for (h, ciphertext) in &wire {
            let mut data = ciphertext.to_vec();
            engine.decrypt_block(h.vd_id, h.block_addr, &mut data);
            checker.add_block(&data, h.payload_crc);
        }
        if checker.verify_and_reset() == SegmentVerdict::Corrupt {
            caught += 1;
        }
    }
    assert_eq!(caught, trials, "every corrupted segment detected");
}

#[test]
fn zero_flip_rate_never_false_positives() {
    for seed in 0..20 {
        let blocks = make_blocks(6);
        let injector = BitFlipInjector::new(seed, 0.0);
        let wire = tx_pipeline(&blocks, Some(injector));
        let engine = SecEngine::new([7; 32]);
        let mut checker = SegmentChecker::new(BLOCK);
        for (h, ciphertext) in &wire {
            let mut data = ciphertext.to_vec();
            engine.decrypt_block(h.vd_id, h.block_addr, &mut data);
            checker.add_block(&data, h.payload_crc);
        }
        assert_eq!(checker.verify_and_reset(), SegmentVerdict::Ok);
    }
}

#[test]
fn wire_roundtrip_preserves_crc_binding() {
    // Encode/decode the EBS header around the payload, as the loopback
    // example does, and confirm the CRC still binds.
    let blocks = make_blocks(3);
    let wire = tx_pipeline(&blocks, None);
    for (h, payload) in wire {
        let mut buf = bytes::BytesMut::new();
        h.encode(&mut buf);
        buf.extend_from_slice(&payload);
        let frozen = buf.freeze();
        let mut cursor = &frozen[..];
        let h2 = EbsHeader::decode(&mut cursor).unwrap();
        assert_eq!(h2, h);
        assert_eq!(cursor.len(), BLOCK);
    }
}
