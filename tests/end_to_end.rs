//! End-to-end integration tests through the public `luna_solar` facade:
//! guest I/O → SA → transport → fabric → storage cluster → completion,
//! across all five data-path variants.

use luna_solar::sa::{IoKind, IoRequest};
use luna_solar::sim::{SimDuration, SimTime};
use luna_solar::stack::{Breakdown, FioConfig, Testbed, TestbedConfig, Variant};

const ALL: [Variant; 5] = [
    Variant::Kernel,
    Variant::Luna,
    Variant::Rdma,
    Variant::SolarStar,
    Variant::Solar,
];

fn light_latency(variant: Variant, kind: IoKind, bytes: u32) -> f64 {
    let mut cfg = TestbedConfig::small(variant, 2, 3);
    cfg.seed = 99;
    let mut tb = Testbed::new(cfg);
    let mut t = SimTime::from_millis(1);
    for i in 0..60u64 {
        tb.schedule_io(
            t,
            (i % 2) as usize,
            IoRequest {
                vd_id: i % 2,
                kind,
                offset: (i % 50) * 65536,
                len: bytes,
            },
        );
        t += SimDuration::from_micros(400);
    }
    tb.run_until(t + SimDuration::from_secs(1));
    let b = Breakdown::collect(tb.traces(), kind, bytes);
    assert_eq!(b.total.count(), 60, "{variant:?}: every I/O completes");
    b.total.median() as f64 / 1000.0
}

#[test]
fn generational_latency_ordering_4k_write() {
    // The paper's headline: each generation is faster.
    let kernel = light_latency(Variant::Kernel, IoKind::Write, 4096);
    let luna = light_latency(Variant::Luna, IoKind::Write, 4096);
    let solar = light_latency(Variant::Solar, IoKind::Write, 4096);
    assert!(
        kernel > 1.5 * luna,
        "kernel {kernel}us should be >1.5x luna {luna}us (paper: kernel FN ~80% higher)"
    );
    assert!(
        luna > 1.2 * solar,
        "luna {luna}us should be well above solar {solar}us (paper: 20-69% cut)"
    );
}

#[test]
fn solar_latency_close_to_rdma() {
    // Fig. 15a: "SOLAR achieves a low I/O latency close to RDMA".
    let rdma = light_latency(Variant::Rdma, IoKind::Write, 4096);
    let solar = light_latency(Variant::Solar, IoKind::Write, 4096);
    let ratio = solar / rdma;
    assert!(
        (0.3..1.3).contains(&ratio),
        "solar {solar}us vs rdma {rdma}us (ratio {ratio})"
    );
}

#[test]
fn reads_slower_than_writes_everywhere() {
    // SSD write cache vs NAND reads (Fig. 6a vs 6c).
    for v in ALL {
        let w = light_latency(v, IoKind::Write, 4096);
        let r = light_latency(v, IoKind::Read, 4096);
        assert!(r > w, "{v:?}: read {r}us must exceed cached write {w}us");
    }
}

#[test]
fn all_variants_sustain_closed_loop_load() {
    for v in ALL {
        let mut tb = Testbed::new(TestbedConfig::small(v, 1, 3));
        tb.attach_fio(
            SimTime::from_millis(1),
            0,
            FioConfig {
                depth: 8,
                bytes: 16384,
                read_fraction: 0.5,
            },
        );
        tb.run_until(SimTime::from_millis(60));
        let (ios, _) = tb.compute_progress(0);
        assert!(ios > 100, "{v:?} completed only {ios} I/Os in 60ms");
        // No I/O stuck.
        assert_eq!(tb.hung_ios(SimDuration::from_millis(500)), 0, "{v:?}");
    }
}

#[test]
fn big_ios_split_across_block_servers() {
    let mut tb = Testbed::new(TestbedConfig::small(Variant::Solar, 1, 4));
    // 2 MiB-aligned 256 KiB I/O spanning a segment boundary.
    let seg_bytes = luna_solar::sa::SEGMENT_BLOCKS * 4096;
    tb.schedule_io(
        SimTime::from_millis(1),
        0,
        IoRequest {
            vd_id: 0,
            kind: IoKind::Write,
            offset: seg_bytes - 128 * 1024,
            len: 256 * 1024,
        },
    );
    tb.run_until(SimTime::from_secs(1));
    let tr = tb.traces()[0];
    assert!(tr.completed.is_some());
    // 64 blocks; the trace's latency covers the max over both sub-RPCs.
    assert!(tr.latency().unwrap() > SimDuration::from_micros(20));
}

#[test]
fn qos_throttles_but_never_breaks() {
    use luna_solar::sa::QosSpec;
    let mut cfg = TestbedConfig::small(Variant::Solar, 1, 3);
    cfg.qos = QosSpec {
        iops: 2000,
        bandwidth: luna_solar::sim::Bandwidth::from_mbps(800),
        burst_secs: 0.01,
    };
    let mut tb = Testbed::new(cfg);
    tb.attach_fio(
        SimTime::from_millis(1),
        0,
        FioConfig {
            depth: 16,
            bytes: 4096,
            read_fraction: 1.0,
        },
    );
    tb.run_until(SimTime::from_millis(500));
    let (ios, _) = tb.compute_progress(0);
    // Closed loop against a 2000 IOPS cap over ~0.5s: ~1000 I/Os.
    let rate = ios as f64 / 0.5;
    assert!(
        (1000.0..3000.0).contains(&rate),
        "QoS-capped rate {rate} IOPS vs 2000 spec"
    );
    // QoS delay shows in traces but not in latency (paper methodology).
    assert!(tb.traces().iter().any(|t| t.qos_delay > SimDuration::ZERO));
}

#[test]
fn deterministic_replay() {
    let run = || {
        let mut tb = Testbed::new(TestbedConfig::small(Variant::Solar, 2, 3));
        tb.attach_fio(
            SimTime::from_millis(1),
            0,
            FioConfig {
                depth: 4,
                bytes: 8192,
                read_fraction: 0.5,
            },
        );
        tb.run_until(SimTime::from_millis(30));
        tb.traces()
            .iter()
            .filter_map(|t| t.latency())
            .map(|l| l.as_nanos())
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed => identical event-for-event replay");
    assert!(!a.is_empty());
}
