//! # luna-solar — a from-scratch reproduction of "From Luna to Solar:
//! The Evolutions of the Compute-to-Storage Networks in Alibaba Cloud"
//! (SIGCOMM 2022)
//!
//! This crate re-exports the whole workspace as one coherent API. The two
//! protagonists:
//!
//! * [`luna`] — the user-space TCP stack (run-to-complete, zero-copy,
//!   share-nothing) over the shared sans-io [`tcp`] engine;
//! * [`solar`] — the storage-oriented reliable UDP transport where **one
//!   packet is one 4 KiB block**: stateless receive path, multipath with
//!   sub-second failover, HPCC-from-INT congestion control.
//!
//! Everything they stand on is here too: the discrete-event kernel
//! ([`sim`]), the Clos fabric with failure injection ([`net`]), wire
//! formats ([`wire`]), CRC and the segment-aggregation integrity check
//! ([`crc`]), the SEC cipher ([`crypto`]), the virtio-blk-shaped guest
//! frontend with storage-function pushdown ([`blk`] — `docs/PROTOCOL.md`
//! §§1–7, DESIGN.md §11), the storage agent ([`sa`]),
//! the ALI-DPU model with its P4-style pipeline ([`dpu`]), the storage
//! cluster ([`storage`]), RDMA baselines ([`rdma`]), workload generators
//! ([`workload`]), the composed end-to-end testbed ([`stack`]), the
//! experiment harness ([`mod@bench`]) that regenerates every figure and
//! table of the paper's evaluation, and the deterministic chaos-search
//! subsystem ([`chaos`]) that sweeps seeded fault schedules through the
//! testbed and certifies recovery invariants.
//!
//! ## Quickstart
//!
//! ```
//! use luna_solar::stack::{Testbed, TestbedConfig, Variant};
//! use luna_solar::sa::{IoKind, IoRequest};
//! use luna_solar::sim::SimTime;
//!
//! let mut tb = Testbed::new(TestbedConfig::small(Variant::Solar, 2, 3));
//! tb.schedule_io(SimTime::from_millis(1), 0, IoRequest {
//!     vd_id: 0,
//!     kind: IoKind::Write,
//!     offset: 0,
//!     len: 4096,
//! });
//! tb.run_until(SimTime::from_secs(1));
//! let trace = tb.traces()[0];
//! assert!(trace.completed.is_some());
//! println!("4K write latency: {}", trace.latency().unwrap());
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ebs_bench as bench;
pub use ebs_blk as blk;
pub use ebs_chaos as chaos;
pub use ebs_crc as crc;
pub use ebs_crypto as crypto;
pub use ebs_dpu as dpu;
pub use ebs_luna as luna;
pub use ebs_net as net;
pub use ebs_obs as obs;
pub use ebs_rdma as rdma;
pub use ebs_sa as sa;
pub use ebs_sim as sim;
pub use ebs_solar as solar;
pub use ebs_stack as stack;
pub use ebs_stats as stats;
pub use ebs_storage as storage;
pub use ebs_tcp as tcp;
pub use ebs_wire as wire;
pub use ebs_workload as workload;
